// Wire-codec robustness (docs/fault-tolerance.md): the decoder is the
// broker's first line of defense against corrupt or hostile bytes, so it
// must (a) round-trip every frame type faithfully and (b) reject truncated,
// oversized, and garbage input with CodecError — never crash or read out of
// bounds. The suite runs under the ASan/UBSan CI legs, which turn any OOB
// access into a hard failure.
#include "broker/wire.h"

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gryphon {
namespace {

using namespace wire;

// Compile-visible table of every frame type in the protocol, pinned to
// wire.h's kFrameTypeCount. Adding a FrameType without extending this table
// (and the round-trip coverage below) fails the build here, and the
// gryphon-analyze protocol rule cross-checks the same invariant in CI.
constexpr FrameType kAllFrameTypes[] = {
    FrameType::kHelloClient,    FrameType::kHelloBroker,
    FrameType::kHelloAck,       FrameType::kSubscribe,
    FrameType::kSubscribeAck,   FrameType::kUnsubscribe,
    FrameType::kPublish,        FrameType::kDeliver,
    FrameType::kAck,            FrameType::kSubPropagate,
    FrameType::kUnsubPropagate, FrameType::kEventForward,
    FrameType::kError,          FrameType::kQuench,
    FrameType::kBrokerAck,      FrameType::kLinkHeartbeat,
    FrameType::kReplHello,      FrameType::kStateSnapshot,
    FrameType::kStateUpdate,    FrameType::kReplAck,
    FrameType::kPromote,
};
static_assert(std::size(kAllFrameTypes) == kFrameTypeCount,
              "frame table out of sync with wire.h FrameType");

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::string random_string(Rng& rng, std::size_t max_len) {
  std::string out(rng.below(max_len + 1), '\0');
  for (auto& c : out) c = static_cast<char>('a' + rng.below(26));
  return out;
}

/// Decodes a frame with the decoder matching its type byte. Returns false
/// when the type byte matches no frame (the caller expects a throw from
/// peek_type-style handling instead).
bool decode_by_type(const std::vector<std::uint8_t>& frame) {
  switch (static_cast<FrameType>(frame.at(0))) {
    case FrameType::kHelloClient: (void)decode_hello_client(frame); return true;
    case FrameType::kHelloBroker: (void)decode_hello_broker(frame); return true;
    case FrameType::kHelloAck: (void)decode_hello_ack(frame); return true;
    case FrameType::kSubscribe: (void)decode_subscribe(frame); return true;
    case FrameType::kSubscribeAck: (void)decode_subscribe_ack(frame); return true;
    case FrameType::kUnsubscribe: (void)decode_unsubscribe(frame); return true;
    case FrameType::kPublish: (void)decode_publish(frame); return true;
    case FrameType::kDeliver: (void)decode_deliver(frame); return true;
    case FrameType::kAck: (void)decode_ack(frame); return true;
    case FrameType::kSubPropagate: (void)decode_sub_propagate(frame); return true;
    case FrameType::kUnsubPropagate: (void)decode_unsub_propagate(frame); return true;
    case FrameType::kEventForward: (void)decode_event_forward(frame); return true;
    case FrameType::kError: (void)decode_error(frame); return true;
    case FrameType::kQuench: (void)decode_quench(frame); return true;
    case FrameType::kBrokerAck: (void)decode_broker_ack(frame); return true;
    case FrameType::kLinkHeartbeat: (void)decode_link_heartbeat(frame); return true;
    case FrameType::kReplHello: (void)decode_repl_hello(frame); return true;
    case FrameType::kStateSnapshot: (void)decode_state_snapshot(frame); return true;
    case FrameType::kStateUpdate: (void)decode_state_update(frame); return true;
    case FrameType::kReplAck: (void)decode_repl_ack(frame); return true;
    case FrameType::kPromote: (void)decode_promote(frame); return true;
  }
  return false;
}

TEST(WireRobustness, FrameTableIsDenseAndExhaustive) {
  // Frame-type values are dense starting at 1 (the length-prefixed framing
  // relies on 0 never being a valid type byte).
  std::vector<bool> seen(kFrameTypeCount + 1, false);
  for (const FrameType type : kAllFrameTypes) {
    const auto value = static_cast<std::size_t>(type);
    ASSERT_GE(value, 1u);
    ASSERT_LE(value, kFrameTypeCount);
    EXPECT_FALSE(seen[value]) << "duplicate frame type value " << value;
    seen[value] = true;
  }
}

TEST(WireRobustness, RoundTripPropertyAllFrameTypes) {
  Rng rng(0xf00dULL);
  for (int iter = 0; iter < 200; ++iter) {
    const auto u64 = [&] { return rng(); };
    const auto space = [&] {
      return SpaceId{static_cast<SpaceId::rep_type>(rng.below(1 << 16))};
    };
    const auto broker = [&] {
      return BrokerId{static_cast<BrokerId::rep_type>(rng.below(1U << 31))};
    };
    const auto sub = [&] { return SubscriptionId{rng.between(-(1LL << 40), 1LL << 40)}; };

    {
      const HelloClient in{random_string(rng, 32), u64()};
      const auto out = decode_hello_client(encode(in));
      EXPECT_EQ(out.name, in.name);
      EXPECT_EQ(out.last_seq, in.last_seq);
    }
    {
      const HelloBroker in{broker(), u64(), u64(), u64()};
      const auto out = decode_hello_broker(encode(in));
      EXPECT_EQ(out.broker, in.broker);
      EXPECT_EQ(out.epoch, in.epoch);
      EXPECT_EQ(out.peer_epoch_seen, in.peer_epoch_seen);
      EXPECT_EQ(out.peer_last_seq, in.peer_last_seq);
    }
    {
      const HelloAck in{u64(), u64()};
      const auto out = decode_hello_ack(encode(in));
      EXPECT_EQ(out.resume_from, in.resume_from);
      EXPECT_EQ(out.truncated_through, in.truncated_through);
    }
    {
      const SubscribeReq in{u64(), space(), random_bytes(rng, 64)};
      const auto out = decode_subscribe(encode(in));
      EXPECT_EQ(out.token, in.token);
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.subscription, in.subscription);
    }
    {
      const SubscribeAck in{u64(), sub()};
      const auto out = decode_subscribe_ack(encode(in));
      EXPECT_EQ(out.token, in.token);
      EXPECT_EQ(out.id, in.id);
    }
    {
      const Unsubscribe in{sub()};
      EXPECT_EQ(decode_unsubscribe(encode(in)).id, in.id);
    }
    {
      const Publish in{space(), random_bytes(rng, 64)};
      const auto out = decode_publish(encode(in));
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.event, in.event);
    }
    {
      const Deliver in{u64(), space(), random_bytes(rng, 64)};
      const auto out = decode_deliver(encode(in));
      EXPECT_EQ(out.seq, in.seq);
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.event, in.event);
    }
    {
      const Ack in{u64()};
      EXPECT_EQ(decode_ack(encode(in)).seq, in.seq);
    }
    {
      const SubPropagate in{sub(), broker(), space(), random_bytes(rng, 64)};
      const auto out = decode_sub_propagate(encode(in));
      EXPECT_EQ(out.id, in.id);
      EXPECT_EQ(out.owner, in.owner);
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.subscription, in.subscription);
    }
    {
      const UnsubPropagate in{sub()};
      EXPECT_EQ(decode_unsub_propagate(encode(in)).id, in.id);
    }
    {
      const EventForward in{broker(), space(), random_bytes(rng, 64), u64(), u64()};
      const auto out = decode_event_forward(encode(in));
      EXPECT_EQ(out.tree_root, in.tree_root);
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.event, in.event);
      EXPECT_EQ(out.epoch, in.epoch);
      EXPECT_EQ(out.seq, in.seq);
    }
    {
      const BrokerAck in{u64(), u64()};
      const auto out = decode_broker_ack(encode(in));
      EXPECT_EQ(out.epoch, in.epoch);
      EXPECT_EQ(out.seq, in.seq);
    }
    {
      const LinkHeartbeat in{u64(), u64()};
      const auto out = decode_link_heartbeat(encode(in));
      EXPECT_EQ(out.epoch, in.epoch);
      EXPECT_EQ(out.truncated_through, in.truncated_through);
    }
    {
      const ErrorFrame in{u64(), random_string(rng, 48)};
      const auto out = decode_error(encode(in));
      EXPECT_EQ(out.token, in.token);
      EXPECT_EQ(out.message, in.message);
    }
    {
      const Quench in{space(), rng.chance(0.5)};
      const auto out = decode_quench(encode(in));
      EXPECT_EQ(out.space, in.space);
      EXPECT_EQ(out.has_subscribers, in.has_subscribers);
    }
    {
      const ReplHello in{broker(), u64()};
      const auto out = decode_repl_hello(encode(in));
      EXPECT_EQ(out.primary, in.primary);
      EXPECT_EQ(out.applied_seq, in.applied_seq);
    }
    {
      const StateSnapshot in{u64(), random_bytes(rng, 96)};
      const auto out = decode_state_snapshot(encode(in));
      EXPECT_EQ(out.through_seq, in.through_seq);
      EXPECT_EQ(out.state, in.state);
    }
    {
      const StateUpdate in{u64(), random_bytes(rng, 64)};
      const auto out = decode_state_update(encode(in));
      EXPECT_EQ(out.seq, in.seq);
      EXPECT_EQ(out.update, in.update);
    }
    {
      const ReplAck in{u64()};
      EXPECT_EQ(decode_repl_ack(encode(in)).seq, in.seq);
    }
    {
      const Promote in{broker()};
      EXPECT_EQ(decode_promote(encode(in)).primary, in.primary);
    }
  }
}

TEST(WireRobustness, EveryStrictPrefixThrows) {
  // Each decoder consumes its payload exactly, so a frame missing even one
  // trailing byte must be rejected — no partial parses, no OOB reads.
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode(HelloClient{"truncate-me", 17}),
      encode(HelloBroker{BrokerId{3}, 1, 2, 3}),
      encode(HelloAck{5, 2}),
      encode(SubscribeReq{9, SpaceId{1}, {1, 2, 3, 4}}),
      encode(SubscribeAck{9, SubscriptionId{1234}}),
      encode(Unsubscribe{SubscriptionId{-5}}),
      encode(Publish{SpaceId{0}, {9, 9, 9}}),
      encode(Deliver{7, SpaceId{0}, {1}}),
      encode(Ack{21}),
      encode(SubPropagate{SubscriptionId{8}, BrokerId{2}, SpaceId{0}, {3, 3}}),
      encode(UnsubPropagate{SubscriptionId{8}}),
      encode(EventForward{BrokerId{1}, SpaceId{0}, {5, 5}, 11, 12}),
      encode(BrokerAck{11, 12}),
      encode(LinkHeartbeat{11, 3}),
      encode(ErrorFrame{1, "boom"}),
      encode(Quench{SpaceId{2}, true}),
      encode(ReplHello{BrokerId{4}, 17}),
      encode(StateSnapshot{42, {1, 2, 3, 4, 5}}),
      encode(StateUpdate{43, {6, 7, 8}}),
      encode(ReplAck{43}),
      encode(Promote{BrokerId{4}}),
  };
  EXPECT_THROW(peek_type(std::span<const std::uint8_t>{}), CodecError);
  for (const auto& frame : frames) {
    // len = 0 is peek_type's empty-frame path (checked once above); from 1
    // on the type byte survives, so the matching field decoder runs and
    // must reject the incomplete payload.
    for (std::size_t len = 1; len < frame.size(); ++len) {
      const std::vector<std::uint8_t> prefix(
          frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode_by_type(prefix), CodecError)
          << "frame type " << static_cast<unsigned>(frame[0]) << " prefix length " << len;
    }
  }
}

TEST(WireRobustness, OversizedLengthPrefixThrows) {
  // A length prefix larger than the remaining buffer must throw, not read
  // past the end. Layout: type byte, u16 space, u32 payload length.
  std::vector<std::uint8_t> frame = {
      static_cast<std::uint8_t>(FrameType::kPublish), 0x00, 0x00,
      0xff, 0xff, 0xff, 0xff,  // length = 2^32 - 1
      0x01, 0x02, 0x03};
  EXPECT_THROW(decode_publish(frame), CodecError);

  // Same for a string field (HelloClient: type byte then string length).
  std::vector<std::uint8_t> hello = {
      static_cast<std::uint8_t>(FrameType::kHelloClient),
      0xf0, 0xff, 0xff, 0xff,  // string length just under 2^32
      'h', 'i'};
  EXPECT_THROW(decode_hello_client(hello), CodecError);
}

TEST(WireRobustness, GarbageBuffersNeverCrash) {
  // Fuzz every decoder with random buffers: any outcome except a clean
  // parse must be CodecError. ASan/UBSan legs verify no OOB underneath.
  Rng rng(0xdeadbeefULL);
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    auto buffer = random_bytes(rng, 48);
    if (!buffer.empty()) {
      // Bias half the runs toward valid type bytes so the field decoders
      // actually get exercised instead of failing at the type check.
      if (rng.chance(0.5)) {
        buffer[0] = static_cast<std::uint8_t>(1 + rng.below(kFrameTypeCount));
      }
    }
    try {
      if (buffer.empty()) {
        (void)peek_type(buffer);
        FAIL() << "peek_type accepted an empty frame";
      } else if (decode_by_type(buffer)) {
        ++parsed;
      } else {
        ++rejected;  // type byte outside the protocol: nothing to decode
      }
    } catch (const CodecError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Tiny frames with a no-payload-ish type can legitimately parse; the
  // point is that nothing else escaped.
  EXPECT_EQ(parsed + rejected, 5000u);
}

TEST(WireRobustness, TypeConfusionThrows) {
  // Well-formed frame, wrong decoder: must throw, not misparse.
  const auto frame = encode(BrokerAck{1, 2});
  EXPECT_THROW((void)decode_event_forward(frame), CodecError);
  EXPECT_THROW((void)decode_hello_broker(frame), CodecError);
  EXPECT_THROW((void)decode_ack(frame), CodecError);
}

}  // namespace
}  // namespace gryphon
