// Property tests for the scale topology generators (fat-tree, Waxman,
// multi-region WAN) behind TopologySpec / build_topology.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

#include "sim/sim_spec.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

std::size_t broker_link_count(const BrokerNetwork& net) {
  std::size_t ports = 0;
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    for (const auto& port : net.ports(BrokerId{static_cast<std::int32_t>(b)})) {
      if (port.kind == BrokerNetwork::PortKind::kBroker) ++ports;
    }
  }
  EXPECT_EQ(ports % 2, 0u) << "every inter-broker link has a port on each side";
  return ports / 2;
}

std::size_t broker_degree(const BrokerNetwork& net, std::size_t b) {
  std::size_t degree = 0;
  for (const auto& port : net.ports(BrokerId{static_cast<std::int32_t>(b)})) {
    if (port.kind == BrokerNetwork::PortKind::kBroker) ++degree;
  }
  return degree;
}

bool connected(const BrokerNetwork& net) {
  if (net.broker_count() == 0) return true;
  std::vector<bool> seen(net.broker_count(), false);
  std::queue<BrokerId> frontier;
  frontier.push(BrokerId{0});
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const BrokerId b = frontier.front();
    frontier.pop();
    for (const auto& port : net.ports(b)) {
      if (port.kind != BrokerNetwork::PortKind::kBroker) continue;
      const auto peer = static_cast<std::size_t>(port.peer_broker.value);
      if (!seen[peer]) {
        seen[peer] = true;
        ++reached;
        frontier.push(port.peer_broker);
      }
    }
  }
  return reached == net.broker_count();
}

/// Flattened (broker, peer, delay) triples for determinism comparisons.
std::vector<std::tuple<std::size_t, std::int32_t, Ticks>> link_fingerprint(
    const BrokerNetwork& net) {
  std::vector<std::tuple<std::size_t, std::int32_t, Ticks>> links;
  for (std::size_t b = 0; b < net.broker_count(); ++b) {
    for (const auto& port : net.ports(BrokerId{static_cast<std::int32_t>(b)})) {
      if (port.kind == BrokerNetwork::PortKind::kBroker) {
        links.emplace_back(b, port.peer_broker.value, port.delay);
      }
    }
  }
  return links;
}

TEST(FatTree, ExactCountsAndDegrees) {
  for (const std::size_t pods : {2u, 4u, 8u}) {
    FatTreeOptions options;
    options.pods = pods;
    const GeneratedTopology topo = make_fat_tree(options);
    const std::size_t half = pods / 2;
    // 5k^2/4 brokers: (k/2)^2 cores + k pods of k/2 agg + k/2 edge.
    EXPECT_EQ(topo.network.broker_count(), 5 * pods * pods / 4) << "pods=" << pods;
    // k^3/2 links: k(k/2)^2 edge-agg + k(k/2)^2 agg-core.
    EXPECT_EQ(broker_link_count(topo.network), pods * pods * pods / 2);
    EXPECT_TRUE(connected(topo.network));
    // Cores come first and connect to one aggregation broker per pod.
    for (std::size_t c = 0; c < half * half; ++c) {
      EXPECT_EQ(broker_degree(topo.network, c), pods);
    }
    // Clients attach to edge brokers only; one region per pod.
    EXPECT_EQ(topo.edge_brokers.size(), pods * half);
    EXPECT_EQ(topo.network.client_count(), pods * half * options.clients_per_edge);
    EXPECT_EQ(topo.region_count, pods);
    for (const BrokerId edge : topo.edge_brokers) {
      EXPECT_EQ(broker_degree(topo.network, static_cast<std::size_t>(edge.value)), half);
      EXPECT_EQ(topo.network.clients_of(edge).size(), options.clients_per_edge);
    }
  }
}

TEST(FatTree, DeterministicAndValidated) {
  const GeneratedTopology a = make_fat_tree(FatTreeOptions{});
  const GeneratedTopology b = make_fat_tree(FatTreeOptions{});
  EXPECT_EQ(link_fingerprint(a.network), link_fingerprint(b.network));
  EXPECT_EQ(a.region_of, b.region_of);
  FatTreeOptions odd;
  odd.pods = 3;
  EXPECT_THROW(make_fat_tree(odd), std::invalid_argument);
}

TEST(Waxman, ConnectedWithBoundedDelaysForAnySeed) {
  WaxmanOptions options;
  options.brokers = 60;
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const GeneratedTopology topo = make_waxman(options, seed);
    EXPECT_EQ(topo.network.broker_count(), options.brokers);
    EXPECT_TRUE(connected(topo.network)) << "seed " << seed;
    EXPECT_EQ(topo.network.client_count(), options.brokers * options.clients_per_broker);
    for (const auto& [b, peer, delay] : link_fingerprint(topo.network)) {
      EXPECT_GE(delay, 1);
      EXPECT_LE(delay, ticks_from_millis(options.max_delay_ms) + 1);
    }
    EXPECT_EQ(topo.region_count, options.regions);
    for (const int region : topo.region_of) {
      EXPECT_GE(region, 0);
      EXPECT_LT(region, static_cast<int>(options.regions));
    }
  }
}

TEST(Waxman, SeedDeterminesTheGraph) {
  WaxmanOptions options;
  options.brokers = 40;
  const GeneratedTopology a = make_waxman(options, 5);
  const GeneratedTopology b = make_waxman(options, 5);
  const GeneratedTopology c = make_waxman(options, 6);
  EXPECT_EQ(link_fingerprint(a.network), link_fingerprint(b.network));
  EXPECT_NE(link_fingerprint(a.network), link_fingerprint(c.network));
}

TEST(Wan, RegionsGatewaysAndDelayBands) {
  WanOptions options;
  options.regions = 5;
  options.brokers_per_region = 8;
  const GeneratedTopology topo = make_wan(options, 11);
  EXPECT_EQ(topo.network.broker_count(), options.regions * options.brokers_per_region);
  EXPECT_TRUE(connected(topo.network));
  EXPECT_EQ(topo.region_count, options.regions);
  const Ticks inter_min = ticks_from_millis(options.inter_min_delay_ms);
  const Ticks inter_max = ticks_from_millis(options.inter_max_delay_ms);
  std::size_t inter_links = 0;
  for (const auto& [b, peer, delay] : link_fingerprint(topo.network)) {
    const int region_a = topo.region_of[b];
    const int region_b = topo.region_of[static_cast<std::size_t>(peer)];
    if (region_a == region_b) continue;
    ++inter_links;
    // Long-haul links join regional gateways (broker 0 of each region) and
    // draw from the inter-region delay band.
    EXPECT_EQ(b % options.brokers_per_region, 0u);
    EXPECT_EQ(static_cast<std::size_t>(peer) % options.brokers_per_region, 0u);
    EXPECT_GE(delay, inter_min);
    EXPECT_LE(delay, inter_max);
  }
  // At least the gateway ring (counted once per direction above).
  EXPECT_GE(inter_links, 2 * options.regions);
  EXPECT_EQ(topo.network.client_count(),
            topo.network.broker_count() * options.clients_per_broker);
}

TEST(Wan, SeedDeterminesTheGraph) {
  WanOptions options;
  options.regions = 3;
  options.brokers_per_region = 6;
  const GeneratedTopology a = make_wan(options, 2);
  const GeneratedTopology b = make_wan(options, 2);
  const GeneratedTopology c = make_wan(options, 3);
  EXPECT_EQ(link_fingerprint(a.network), link_fingerprint(b.network));
  EXPECT_NE(link_fingerprint(a.network), link_fingerprint(c.network));
}

TEST(TopologySpecBridge, BuildTopologyDispatchesOnKindAndSubStream) {
  // build_topology must derive generator randomness from the spec seed's
  // topology sub-stream: same seed -> same network, and the spec route must
  // agree with calling the generator directly on that sub-stream seed.
  TopologySpec spec;
  spec.kind = TopologyKind::kWaxman;
  spec.waxman.brokers = 30;
  const GeneratedTopology via_spec = build_topology(spec, 77);
  const GeneratedTopology again = build_topology(spec, 77);
  EXPECT_EQ(link_fingerprint(via_spec.network), link_fingerprint(again.network));
  const GeneratedTopology direct =
      make_waxman(spec.waxman, sim_stream_seed(77, SimStream::kTopology));
  EXPECT_EQ(link_fingerprint(via_spec.network), link_fingerprint(direct.network));

  TopologySpec ft;
  ft.kind = TopologyKind::kFatTree;
  EXPECT_EQ(build_topology(ft, 1).network.broker_count(), 20u);
  TopologySpec wan;
  wan.kind = TopologyKind::kWan;
  wan.wan.regions = 2;
  wan.wan.brokers_per_region = 4;
  EXPECT_EQ(build_topology(wan, 1).network.broker_count(), 8u);
}

}  // namespace
}  // namespace gryphon
