#include "broker/wire.h"

#include <gtest/gtest.h>

#include "event/schema.h"

namespace gryphon {
namespace {

using namespace wire;

TEST(Wire, HelloClientRoundTrip) {
  const auto frame = encode(HelloClient{"trader-7", 42});
  EXPECT_EQ(peek_type(frame), FrameType::kHelloClient);
  const auto m = decode_hello_client(frame);
  EXPECT_EQ(m.name, "trader-7");
  EXPECT_EQ(m.last_seq, 42u);
}

TEST(Wire, HelloBrokerRoundTrip) {
  const auto frame = encode(HelloBroker{BrokerId{5}, 0xabcdef12u, 0x1234u, 777u});
  const auto m = decode_hello_broker(frame);
  EXPECT_EQ(m.broker, BrokerId{5});
  EXPECT_EQ(m.epoch, 0xabcdef12u);
  EXPECT_EQ(m.peer_epoch_seen, 0x1234u);
  EXPECT_EQ(m.peer_last_seq, 777u);
}

TEST(Wire, HelloAckRoundTrip) {
  const auto m = decode_hello_ack(encode(HelloAck{99, 42}));
  EXPECT_EQ(m.resume_from, 99u);
  EXPECT_EQ(m.truncated_through, 42u);
}

TEST(Wire, SubscribeRoundTrip) {
  const std::vector<std::uint8_t> sub_bytes = {1, 2, 3};
  const auto m = decode_subscribe(encode(SubscribeReq{7, SpaceId{2}, sub_bytes}));
  EXPECT_EQ(m.token, 7u);
  EXPECT_EQ(m.space, SpaceId{2});
  EXPECT_EQ(m.subscription, sub_bytes);
}

TEST(Wire, SubscribeAckRoundTrip) {
  const auto m = decode_subscribe_ack(encode(SubscribeAck{7, SubscriptionId{123456789}}));
  EXPECT_EQ(m.token, 7u);
  EXPECT_EQ(m.id, SubscriptionId{123456789});
}

TEST(Wire, UnsubscribeRoundTrip) {
  EXPECT_EQ(decode_unsubscribe(encode(Unsubscribe{SubscriptionId{-3}})).id, SubscriptionId{-3});
}

TEST(Wire, PublishDeliverAckRoundTrip) {
  const std::vector<std::uint8_t> event_bytes = {9, 8, 7, 6};
  const auto p = decode_publish(encode(Publish{SpaceId{1}, event_bytes}));
  EXPECT_EQ(p.space, SpaceId{1});
  EXPECT_EQ(p.event, event_bytes);
  const auto d = decode_deliver(encode(Deliver{55, SpaceId{1}, event_bytes}));
  EXPECT_EQ(d.seq, 55u);
  EXPECT_EQ(d.event, event_bytes);
  EXPECT_EQ(decode_ack(encode(Ack{55})).seq, 55u);
}

TEST(Wire, SubPropagateRoundTrip) {
  const std::vector<std::uint8_t> sub_bytes = {4, 4};
  const auto m =
      decode_sub_propagate(encode(SubPropagate{SubscriptionId{77}, BrokerId{3}, SpaceId{0}, sub_bytes}));
  EXPECT_EQ(m.id, SubscriptionId{77});
  EXPECT_EQ(m.owner, BrokerId{3});
  EXPECT_EQ(m.subscription, sub_bytes);
}

TEST(Wire, EventForwardRoundTrip) {
  const std::vector<std::uint8_t> event_bytes = {1};
  const auto m = decode_event_forward(
      encode(EventForward{BrokerId{11}, SpaceId{4}, event_bytes, 9001u, 17u}));
  EXPECT_EQ(m.tree_root, BrokerId{11});
  EXPECT_EQ(m.space, SpaceId{4});
  EXPECT_EQ(m.epoch, 9001u);
  EXPECT_EQ(m.seq, 17u);
}

TEST(Wire, BrokerAckRoundTrip) {
  const auto m = decode_broker_ack(encode(BrokerAck{31337u, 12u}));
  EXPECT_EQ(m.epoch, 31337u);
  EXPECT_EQ(m.seq, 12u);
}

TEST(Wire, LinkHeartbeatRoundTrip) {
  const auto m = decode_link_heartbeat(encode(LinkHeartbeat{88u, 6u}));
  EXPECT_EQ(m.epoch, 88u);
  EXPECT_EQ(m.truncated_through, 6u);
}

TEST(Wire, ErrorRoundTrip) {
  const auto m = decode_error(encode(ErrorFrame{13, "bad predicate"}));
  EXPECT_EQ(m.token, 13u);
  EXPECT_EQ(m.message, "bad predicate");
}

TEST(Wire, TypeMismatchThrows) {
  const auto frame = encode(Ack{1});
  EXPECT_THROW(decode_publish(frame), CodecError);
}

TEST(Wire, EmptyFrameThrows) {
  EXPECT_THROW(peek_type(std::span<const std::uint8_t>{}), CodecError);
}

TEST(Wire, TruncatedFrameThrows) {
  auto frame = encode(HelloClient{"someone", 1});
  frame.resize(frame.size() / 2);
  EXPECT_THROW(decode_hello_client(frame), CodecError);
}


TEST(Wire, QuenchRoundTrip) {
  const auto on = decode_quench(encode(Quench{SpaceId{3}, true}));
  EXPECT_EQ(on.space, SpaceId{3});
  EXPECT_TRUE(on.has_subscribers);
  const auto off = decode_quench(encode(Quench{SpaceId{0}, false}));
  EXPECT_FALSE(off.has_subscribers);
}

}  // namespace
}  // namespace gryphon
