// Thread-sanitizer target for the parallel simulation engine: a multi-worker
// run over Figure 6 exercising the barrier protocol, cross-partition
// inboxes, and the shared aggregate control plane. Lives in the
// concurrency-labeled binary so the tools/ci.sh tsan leg picks it up.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace gryphon {
namespace {

TEST(ParallelEngine, WorkersRaceFreeAndDeterministic) {
  SimSpec spec;
  spec.seed = 31;
  spec.topology.kind = TopologyKind::kFigure6;
  spec.workload.subscriptions = 300;
  spec.workload.events = 40;
  spec.workload.rate_eps = 60.0;
  const SimResult serial = simulate(spec);
  spec.engine.threads = 4;
  const SimResult parallel = simulate(spec);
  EXPECT_TRUE(same_outcome(serial, parallel));
  EXPECT_EQ(parallel.missing_deliveries, 0u);
}

TEST(ParallelEngine, SharedAggregatePlaneIsReadOnlyAcrossWorkers) {
  // The aggregate control plane shares one matcher and destination map
  // across partitions; tsan must see only reads after construction.
  SimSpec spec;
  spec.seed = 32;
  spec.topology.kind = TopologyKind::kWan;
  spec.topology.wan.regions = 3;
  spec.topology.wan.brokers_per_region = 6;
  spec.workload.subscriptions = 200;
  spec.workload.events = 30;
  spec.workload.rate_eps = 50.0;
  spec.engine.control_plane = ControlPlaneMode::kAggregate;
  spec.engine.threads = 3;
  const SimResult result = simulate(spec);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
}

}  // namespace
}  // namespace gryphon
