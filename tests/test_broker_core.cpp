#include "broker/broker_core.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

constexpr SpaceId kSpace0{0};

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

Event ev(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<Value> v;
  for (const int x : values) v.emplace_back(x);
  return Event(schema, std::move(v));
}

BrokerNetwork broker_only_line(std::size_t n) { return make_line(n, 10, 0, 1); }

/// One-event dispatch through the batch-first API (the only dispatch entry
/// besides the explicit-scratch scalar shim). Returns a copy so the batch
/// can go out of scope.
BrokerCore::Decision dispatch1(const BrokerCore& core, SpaceId space, const Event& e,
                               BrokerId tree_root) {
  DispatchBatch batch;
  batch.add(space, e, tree_root);
  return core.dispatch(batch)[0];
}

class BrokerCoreTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(4, 3);
  BrokerNetwork topo_ = broker_only_line(3);
};

TEST_F(BrokerCoreTest, RejectsTopologyWithClients) {
  const auto with_clients = make_line(2, 10, 1, 1);
  EXPECT_THROW(BrokerCore(BrokerId{0}, with_clients, {schema_}), std::invalid_argument);
}

TEST_F(BrokerCoreTest, NeighborsFollowPortOrder) {
  BrokerCore core(BrokerId{1}, topo_, {schema_});
  EXPECT_EQ(core.neighbors(), (std::vector<BrokerId>{BrokerId{0}, BrokerId{2}}));
}

TEST_F(BrokerCoreTest, RoutesTowardRemoteOwner) {
  BrokerCore core(BrokerId{0}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1}), BrokerId{2});

  const auto hit = dispatch1(core, kSpace0, ev(schema_, {1, 0, 0, 0}), BrokerId{0});
  EXPECT_EQ(hit.forward, (std::vector<BrokerId>{BrokerId{1}}));
  EXPECT_FALSE(hit.deliver_locally);
  EXPECT_TRUE(hit.local_matches.empty());

  const auto miss = dispatch1(core, kSpace0, ev(schema_, {2, 0, 0, 0}), BrokerId{0});
  EXPECT_TRUE(miss.forward.empty());
  EXPECT_FALSE(miss.deliver_locally);
}

TEST_F(BrokerCoreTest, DispatchYieldsLocalMatches) {
  BrokerCore core(BrokerId{1}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1}), BrokerId{1});
  core.add_subscription(kSpace0, SubscriptionId{2}, sub_eq(schema_, {1, 2, -1, -1}), BrokerId{1});
  core.add_subscription(kSpace0, SubscriptionId{3}, sub_eq(schema_, {1, -1, -1, -1}), BrokerId{0});

  auto decision = dispatch1(core, kSpace0, ev(schema_, {1, 2, 0, 0}), BrokerId{1});
  EXPECT_TRUE(decision.deliver_locally);
  EXPECT_EQ(decision.forward, (std::vector<BrokerId>{BrokerId{0}}));

  std::sort(decision.local_matches.begin(), decision.local_matches.end());
  EXPECT_EQ(decision.local_matches,
            (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{2}}));
}

TEST_F(BrokerCoreTest, DispatchLocalMatchesAgreeWithMatchAll) {
  // dispatch() is the one data-plane entry point (the route()/match_local()
  // shims are gone): its local-match list must be exactly the locally-owned
  // subset of the network-wide match set.
  BrokerCore core(BrokerId{1}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1}), BrokerId{1});
  core.add_subscription(kSpace0, SubscriptionId{3}, sub_eq(schema_, {1, -1, -1, -1}), BrokerId{0});

  const Event e = ev(schema_, {1, 2, 0, 0});
  const auto decision = dispatch1(core, kSpace0, e, BrokerId{1});
  std::vector<SubscriptionId> expected_local;
  for (const SubscriptionId id : core.match_all(kSpace0, e)) {
    if (core.owner_of(id) == core.self()) expected_local.push_back(id);
  }
  auto from_dispatch = decision.local_matches;
  std::sort(from_dispatch.begin(), from_dispatch.end());
  std::sort(expected_local.begin(), expected_local.end());
  EXPECT_EQ(from_dispatch, expected_local);
  EXPECT_EQ(decision.deliver_locally, !expected_local.empty());
}

TEST_F(BrokerCoreTest, NoUpstreamForwarding) {
  // Event arrives at broker 2 on the tree rooted at 0; the only subscriber
  // is at broker 0 (upstream). Broker 2 must not bounce it back.
  BrokerCore core(BrokerId{2}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}),
                        BrokerId{0});
  const auto decision = dispatch1(core, kSpace0, ev(schema_, {0, 0, 0, 0}), BrokerId{0});
  EXPECT_TRUE(decision.forward.empty());
  EXPECT_FALSE(decision.deliver_locally);
}

TEST_F(BrokerCoreTest, HopByHopDeliveryMatchesCentralMatch) {
  // Three cores, one per broker, sharing the subscription set; walk events
  // through dispatch() decisions and compare against match_all ownership.
  std::vector<std::unique_ptr<BrokerCore>> cores;
  for (int b = 0; b < 3; ++b) {
    cores.push_back(std::make_unique<BrokerCore>(BrokerId{b}, topo_,
                                                 std::vector<SchemaPtr>{schema_}));
  }
  Rng rng(88);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  for (std::int64_t i = 0; i < 150; ++i) {
    const auto s = gen.generate(rng);
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    for (auto& core : cores) core->add_subscription(kSpace0, SubscriptionId{i}, s, owner);
  }

  EventGenerator events(schema_);
  for (int i = 0; i < 60; ++i) {
    const Event e = events.generate(rng);
    for (int root = 0; root < 3; ++root) {
      std::set<std::int64_t> delivered;
      std::vector<BrokerId> frontier{BrokerId{root}};
      std::set<int> visited;
      while (!frontier.empty()) {
        const BrokerId at = frontier.back();
        frontier.pop_back();
        ASSERT_TRUE(visited.insert(at.value).second);
        const auto d =
            dispatch1(*cores[static_cast<std::size_t>(at.value)], kSpace0, e, BrokerId{root});
        for (const BrokerId next : d.forward) frontier.push_back(next);
        EXPECT_EQ(d.deliver_locally, !d.local_matches.empty());
        for (const SubscriptionId id : d.local_matches) delivered.insert(id.value);
      }
      std::set<std::int64_t> expected;
      for (const SubscriptionId id : cores[0]->match_all(kSpace0, e)) expected.insert(id.value);
      EXPECT_EQ(delivered, expected);
    }
  }
}

TEST_F(BrokerCoreTest, MultipleInformationSpaces) {
  const auto other = make_synthetic_schema(2, 2, "other");
  BrokerCore core(BrokerId{0}, topo_, {schema_, other});
  EXPECT_EQ(core.space_count(), 2u);
  EXPECT_EQ(core.schema(SpaceId{1})->name(), "other");
  core.add_subscription(SpaceId{1}, SubscriptionId{1}, sub_eq(other, {1, -1}), BrokerId{0});
  EXPECT_TRUE(dispatch1(core, SpaceId{1}, ev(other, {1, 0}), BrokerId{0}).deliver_locally);
  EXPECT_FALSE(
      dispatch1(core, kSpace0, ev(schema_, {1, 0, 0, 0}), BrokerId{0}).deliver_locally);
  EXPECT_THROW((void)core.schema(SpaceId{2}), std::invalid_argument);
  EXPECT_THROW(
      core.add_subscription(SpaceId{5}, SubscriptionId{2}, sub_eq(other, {1, -1}), BrokerId{0}),
      std::invalid_argument);
}

TEST_F(BrokerCoreTest, RemoveSubscriptionStopsRouting) {
  BrokerCore core(BrokerId{0}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}),
                        BrokerId{2});
  EXPECT_FALSE(dispatch1(core, kSpace0, ev(schema_, {0, 0, 0, 0}), BrokerId{0}).forward.empty());
  EXPECT_TRUE(core.remove_subscription(SubscriptionId{1}));
  EXPECT_TRUE(dispatch1(core, kSpace0, ev(schema_, {0, 0, 0, 0}), BrokerId{0}).forward.empty());
  EXPECT_FALSE(core.remove_subscription(SubscriptionId{1}));
}

TEST_F(BrokerCoreTest, SnapshotVersionAdvancesWithControlPlane) {
  BrokerCore core(BrokerId{0}, topo_, {schema_});
  const auto v0 = core.snapshot_version();
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}),
                        BrokerId{0});
  const auto v1 = core.snapshot_version();
  EXPECT_GT(v1, v0);
  EXPECT_TRUE(core.remove_subscription(SubscriptionId{1}));
  EXPECT_GT(core.snapshot_version(), v1);
}

TEST_F(BrokerCoreTest, OwnerLookupAndValidation) {
  BrokerCore core(BrokerId{0}, topo_, {schema_});
  core.add_subscription(kSpace0, SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}),
                        BrokerId{2});
  EXPECT_EQ(core.owner_of(SubscriptionId{1}), BrokerId{2});
  EXPECT_EQ(core.space_of(SubscriptionId{1}), kSpace0);
  EXPECT_THROW((void)core.owner_of(SubscriptionId{9}), std::invalid_argument);
  EXPECT_THROW(core.add_subscription(kSpace0, SubscriptionId{1},
                                     sub_eq(schema_, {-1, -1, -1, -1}), BrokerId{0}),
               std::invalid_argument);  // duplicate id
  EXPECT_THROW(core.add_subscription(kSpace0, SubscriptionId{2},
                                     sub_eq(schema_, {-1, -1, -1, -1}), BrokerId{77}),
               std::invalid_argument);  // bad owner
}

}  // namespace
}  // namespace gryphon
