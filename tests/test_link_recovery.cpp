// Broker-link fault tolerance (docs/fault-tolerance.md): link sessions
// replay unacked forwards across drops, the go-back-N timer fills silent
// losses, the supervisor detects dead links and redials with backoff,
// subscription state reconciles on reconnect (tombstones included), and
// malformed frames are rejected without taking the broker down.
//
// Everything is deterministic: brokers run on an injected fake clock with
// pinned session epochs, and the InProcNetwork delivers frames only when
// pumped.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/fault_transport.h"
#include "broker/inproc_transport.h"
#include "broker/link_supervisor.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

struct LinkBed {
  SchemaPtr schema = make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                            Attribute{"price", AttributeType::kDouble, {}},
                                            Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  Ticks clock{0};
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Client>> clients;
  ConnId link_conn{kInvalidConn};

  explicit LinkBed(Broker::Options base = Broker::Options{}) {
    for (int b = 0; b < 2; ++b) {
      auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
      Broker::Options opts = base;
      opts.session_epoch = 100 + static_cast<std::uint64_t>(b);
      opts.clock = [this] { return clock; };
      brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                                 std::vector<SchemaPtr>{schema}, *endpoint,
                                                 opts));
      endpoint->set_handler(brokers.back().get());
    }
    connect_link();
    net.pump();
  }

  void connect_link() {
    link_conn = net.connect("broker0", "broker1");
    brokers[0]->attach_broker_link(link_conn, BrokerId{1});
    net.pump();
  }

  void drop_link() { net.drop("broker0", link_conn); }

  Client& add_client(const std::string& name, int broker) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    const ConnId conn = net.connect(name, "broker" + std::to_string(broker));
    clients.back()->bind(conn);
    net.pump();
    return *clients.back();
  }

  Event trade(const char* issue, double price, int volume) {
    return Event(schema, {Value(issue), Value(price), Value(volume)});
  }
};

TEST(LinkRecovery, ForwardsQueuedWhileDownReplayOnReconnect) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  bed.drop_link();
  EXPECT_EQ(bed.brokers[0]->stats().link_flaps, 1u);
  EXPECT_FALSE(bed.brokers[0]->link_up(BrokerId{1}));

  for (int i = 1; i <= 3; ++i) pub.publish(0, bed.trade("IBM", 100.0 + i, i));
  bed.net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());
  EXPECT_EQ(bed.brokers[0]->stats().events_forwarded, 0u);

  bed.connect_link();  // handshake replays the queued forwards
  const auto deliveries = sub.take_deliveries();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].event.value(2).as_int(), 1);
  EXPECT_EQ(deliveries[2].event.value(2).as_int(), 3);
  EXPECT_GE(bed.brokers[0]->stats().retransmits, 3u);
  EXPECT_EQ(bed.brokers[1]->stats().events_relayed, 3u);
}

TEST(LinkRecovery, ReconnectDoesNotDuplicateDeliveries) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  pub.publish(0, bed.trade("IBM", 100.0, 1));
  bed.net.pump();
  ASSERT_EQ(sub.take_deliveries().size(), 1u);

  // Flap the link a few times with no traffic in between: the handshake
  // must not resurrect already-acked forwards.
  for (int flap = 0; flap < 3; ++flap) {
    bed.drop_link();
    bed.connect_link();
  }
  EXPECT_TRUE(sub.take_deliveries().empty());
  EXPECT_EQ(bed.brokers[1]->stats().duplicates_dropped, 0u);

  pub.publish(0, bed.trade("IBM", 101.0, 2));
  bed.net.pump();
  EXPECT_EQ(sub.take_deliveries().size(), 1u);
}

TEST(LinkRecovery, GoBackNRetransmitsSilentlyLostForwards) {
  // Broker 0's transport is wrapped in the fault decorator so the link can
  // be severed (black-holed) without the transport noticing: frames are
  // eaten, no disconnect fires, and only the retransmit timer can recover.
  const SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});
  const BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  Ticks clock = 0;

  auto* ep0 = net.create_endpoint("broker0");
  auto* ep1 = net.create_endpoint("broker1");
  FaultInjectingTransport faults(*ep0, FaultInjectingTransport::Options{});

  Broker::Options opts;
  opts.session_epoch = 100;
  opts.link_retransmit_timeout = 100;
  opts.link_heartbeat_interval = 10000;
  opts.clock = [&clock] { return clock; };
  Broker b0(BrokerId{0}, topo, {schema}, faults, opts);
  faults.set_handler(&b0);
  ep0->set_handler(&faults);

  Broker::Options opts1 = opts;
  opts1.session_epoch = 101;
  Broker b1(BrokerId{1}, topo, {schema}, *ep1, opts1);
  ep1->set_handler(&b1);

  const ConnId link = net.connect("broker0", "broker1");
  b0.attach_broker_link(link, BrokerId{1});
  net.pump();

  Client sub("sub", *net.create_endpoint("sub"), {schema});
  net.create_endpoint("sub")->set_handler(&sub);
  sub.bind(net.connect("sub", "broker1"));
  Client pub("pub", *net.create_endpoint("pub"), {schema});
  net.create_endpoint("pub")->set_handler(&pub);
  pub.bind(net.connect("pub", "broker0"));
  net.pump();
  sub.subscribe(0, "volume > 0");
  net.pump();

  faults.sever(link);
  pub.publish(0, Event(schema, {Value("IBM"), Value(99.0), Value(7)}));
  net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());
  EXPECT_GE(faults.counters().severed_out, 1u);
  EXPECT_EQ(b0.stats().events_forwarded, 1u);  // sent once, eaten in flight

  // Healing alone changes nothing — the frame is gone. The go-back-N timer
  // resends the unacked window once the ack stalls past the timeout.
  faults.heal_all();
  net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());

  clock += 200;  // past the retransmit timeout
  b0.tick_links(clock);
  net.pump();
  const auto deliveries = sub.take_deliveries();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].event.value(2).as_int(), 7);
  EXPECT_GE(b0.stats().retransmits, 1u);

  // And the ack that came back retired the window: another timer pass
  // retransmits nothing new.
  const std::uint64_t retransmits_before = b0.stats().retransmits;
  clock += 200;
  b0.tick_links(clock);
  net.pump();
  EXPECT_EQ(b0.stats().retransmits, retransmits_before);
  EXPECT_TRUE(sub.take_deliveries().empty());
}

TEST(LinkRecovery, HeartbeatsKeepQuietLinkAliveUnderSupervision) {
  Broker::Options base;
  base.link_heartbeat_interval = 100;
  LinkBed bed(base);
  LinkSupervisor::Options sup_opts;
  sup_opts.idle_timeout = 1000;
  LinkSupervisor supervisor(
      *bed.brokers[0], [](BrokerId) { return kInvalidConn; }, sup_opts);
  supervisor.supervise(BrokerId{1});

  // Both ends run their periodic tick; no application traffic at all.
  for (Ticks t = 0; t <= 10000; t += 100) {
    bed.clock = t;
    supervisor.tick(t);
    bed.brokers[1]->tick_links(t);
    bed.net.pump();
  }
  EXPECT_TRUE(bed.brokers[0]->link_up(BrokerId{1}));
  EXPECT_EQ(bed.brokers[0]->stats().link_flaps, 0u);
  EXPECT_EQ(supervisor.status(BrokerId{1}).dial_attempts, 0u);
}

TEST(LinkRecovery, SupervisorDropsSilentLinkAndRedials) {
  Broker::Options base;
  base.link_heartbeat_interval = 100;
  LinkBed bed(base);
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  LinkSupervisor::Options sup_opts;
  sup_opts.idle_timeout = 500;
  sup_opts.backoff_initial = 100;
  sup_opts.jitter = 0.0;
  LinkSupervisor supervisor(
      *bed.brokers[0],
      [&bed](BrokerId) { return bed.net.connect("broker0", "broker1"); }, sup_opts);
  supervisor.supervise(BrokerId{1});

  // Phase 1: the peer stops responding entirely (we stop ticking broker 1,
  // so it emits no heartbeats). The supervisor must notice the silence,
  // drop the link, and start redialing.
  Ticks t = 0;
  for (; t <= 2000; t += 100) {
    bed.clock = t;
    supervisor.tick(t);
    bed.net.pump();  // broker 1 still acks/handshakes on reconnect...
  }
  // Every redial "succeeds" at the transport level but the link goes silent
  // again (broker 1 responds to the handshake, which resets the activity
  // clock, then goes quiet). At least one idle drop must have happened.
  EXPECT_GE(bed.brokers[0]->stats().link_flaps, 1u);
  EXPECT_GE(supervisor.status(BrokerId{1}).dial_attempts, 1u);

  // Phase 2: the peer comes back to life (its tick loop resumes): the link
  // stabilizes and traffic flows again.
  for (; t <= 4000; t += 100) {
    bed.clock = t;
    supervisor.tick(t);
    bed.brokers[1]->tick_links(t);
    bed.net.pump();
  }
  EXPECT_TRUE(bed.brokers[0]->link_up(BrokerId{1}));
  pub.publish(0, bed.trade("IBM", 100.0, 5));
  bed.net.pump();
  EXPECT_EQ(sub.take_deliveries().size(), 1u);
}

TEST(LinkRecovery, SupervisorBacksOffExponentially) {
  LinkBed bed;
  bed.drop_link();

  std::vector<Ticks> attempts;
  LinkSupervisor::Options sup_opts;
  sup_opts.backoff_initial = 100;
  sup_opts.backoff_max = 10000;
  sup_opts.jitter = 0.0;
  LinkSupervisor supervisor(
      *bed.brokers[0],
      [&](BrokerId) {
        attempts.push_back(bed.clock);
        return kInvalidConn;  // the peer is unreachable
      },
      sup_opts);
  supervisor.supervise(BrokerId{1});

  for (Ticks t = 0; t <= 2000; t += 10) {
    bed.clock = t;
    supervisor.tick(t);
  }
  // Attempts at ~0, ~100, ~300 (100+200), ~700 (+400), ~1500 (+800): five
  // within the window, each gap doubling.
  ASSERT_GE(attempts.size(), 4u);
  ASSERT_LE(attempts.size(), 6u);
  for (std::size_t i = 2; i < attempts.size(); ++i) {
    const Ticks prev_gap = attempts[i - 1] - attempts[i - 2];
    const Ticks gap = attempts[i] - attempts[i - 1];
    EXPECT_GE(gap, prev_gap * 2 - 10) << "attempt " << i << " did not back off";
  }
}

TEST(LinkRecovery, RedialBudgetExhaustionDeclaresLinkDead) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  bool peer_reachable = false;
  LinkSupervisor::Options sup_opts;
  sup_opts.backoff_initial = 10;
  sup_opts.backoff_max = 50;
  sup_opts.jitter = 0.0;
  sup_opts.redial_budget = 3;
  LinkSupervisor supervisor(
      *bed.brokers[0],
      [&](BrokerId) {
        return peer_reachable ? bed.net.connect("broker0", "broker1") : kInvalidConn;
      },
      sup_opts);

  bed.drop_link();
  supervisor.supervise(BrokerId{1});
  for (Ticks t = 0; t <= 500 && !supervisor.status(BrokerId{1}).dead; t += 10) {
    bed.clock = t;
    supervisor.tick(t);
  }
  ASSERT_TRUE(supervisor.status(BrokerId{1}).dead);
  EXPECT_EQ(supervisor.status(BrokerId{1}).consecutive_failures, 3u);

  // Forwards to the dead link degrade to counted drops — no unbounded log.
  pub.publish(0, bed.trade("IBM", 100.0, 1));
  bed.net.pump();
  EXPECT_EQ(bed.brokers[0]->stats().forwards_dropped_dead_link, 1u);
  EXPECT_TRUE(sub.take_deliveries().empty());

  // Reviving the peer and re-supervising brings the link back; new traffic
  // flows, the dropped forward stays dropped.
  peer_reachable = true;
  supervisor.supervise(BrokerId{1});
  bed.clock += 10;
  supervisor.tick(bed.clock);
  bed.net.pump();
  EXPECT_TRUE(bed.brokers[0]->link_up(BrokerId{1}));
  pub.publish(0, bed.trade("IBM", 101.0, 2));
  bed.net.pump();
  const auto deliveries = sub.take_deliveries();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].event.value(2).as_int(), 2);
}

TEST(LinkRecovery, TombstoneStopsReconnectResurrectingUnsubscription) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  const std::uint64_t token = sub.subscribe(0, "volume > 0");
  bed.net.pump();
  ASSERT_EQ(bed.brokers[0]->subscription_count(), 1u);
  const auto id = sub.subscription_id(token);
  ASSERT_TRUE(id.has_value());

  // The unsubscription happens while the link is down, so broker 0 keeps a
  // stale replica it will try to re-flood during the reconnect handshake.
  bed.drop_link();
  sub.unsubscribe(*id);
  bed.net.pump();
  EXPECT_EQ(bed.brokers[1]->subscription_count(), 0u);
  EXPECT_EQ(bed.brokers[0]->subscription_count(), 1u);  // stale

  bed.connect_link();  // sync floods the stale replica; tombstone answers
  EXPECT_EQ(bed.brokers[0]->subscription_count(), 0u);
  EXPECT_EQ(bed.brokers[1]->subscription_count(), 0u);

  pub.publish(0, bed.trade("IBM", 100.0, 5));
  bed.net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());
}

TEST(LinkRecovery, MalformedFramesAreRejectedWithoutCrashing) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  struct Probe : TransportHandler {
    int disconnects = 0;
    void on_connect(ConnId) override {}
    void on_frame(ConnId, std::span<const std::uint8_t>) override {}
    void on_disconnect(ConnId) override { ++disconnects; }
  };
  Probe probe;
  auto* attacker = bed.net.create_endpoint("attacker");
  attacker->set_handler(&probe);

  // Garbage type byte.
  const ConnId c1 = bed.net.connect("attacker", "broker0");
  attacker->send(c1, {0xff, 0x13, 0x37});
  bed.net.pump();
  EXPECT_EQ(bed.brokers[0]->stats().frames_rejected, 1u);
  EXPECT_EQ(probe.disconnects, 1);

  // Valid type byte, truncated payload.
  const ConnId c2 = bed.net.connect("attacker", "broker0");
  attacker->send(c2, {static_cast<std::uint8_t>(wire::FrameType::kSubscribe), 0x01});
  bed.net.pump();
  EXPECT_EQ(bed.brokers[0]->stats().frames_rejected, 2u);
  EXPECT_EQ(probe.disconnects, 2);

  // Oversized length prefix (empty frames can't cross InProcNetwork — it
  // uses them as drop tombstones — and are covered in test_wire_robustness).
  const ConnId c3 = bed.net.connect("attacker", "broker0");
  attacker->send(c3, {static_cast<std::uint8_t>(wire::FrameType::kPublish), 0x00, 0x00,
                      0xff, 0xff, 0xff, 0xff});
  bed.net.pump();
  EXPECT_EQ(bed.brokers[0]->stats().frames_rejected, 3u);
  EXPECT_EQ(probe.disconnects, 3);

  // The broker shrugged it all off: normal traffic still flows.
  pub.publish(0, bed.trade("IBM", 100.0, 5));
  bed.net.pump();
  EXPECT_EQ(sub.take_deliveries().size(), 1u);
}

TEST(LinkRecovery, RestartedPeerRebasesInsteadOfStalling) {
  LinkBed bed;
  Client& sub = bed.add_client("sub", 1);
  Client& pub = bed.add_client("pub", 0);
  sub.subscribe(0, "volume > 0");
  bed.net.pump();

  // Advance broker 0's outbound numbering past zero and let the acks land.
  pub.publish(0, bed.trade("IBM", 100.0, 1));
  pub.publish(0, bed.trade("IBM", 100.0, 2));
  bed.net.pump();
  ASSERT_EQ(sub.take_deliveries().size(), 2u);

  // "Restart" broker 1: a brand-new instance (fresh epoch, fresh inbound
  // counters) takes over its BrokerId on a new endpoint.
  bed.drop_link();
  auto* ep1b = bed.net.create_endpoint("broker1b");
  Broker::Options opts;
  opts.session_epoch = 999;
  Broker b1b(BrokerId{1}, bed.topo, {bed.schema}, *ep1b, opts);
  ep1b->set_handler(&b1b);

  Client sub2("sub2", *bed.net.create_endpoint("sub2"), {bed.schema});
  bed.net.create_endpoint("sub2")->set_handler(&sub2);
  sub2.bind(bed.net.connect("sub2", "broker1b"));
  bed.net.pump();
  sub2.subscribe(0, "volume > 0");
  bed.net.pump();

  const ConnId conn = bed.net.connect("broker0", "broker1b");
  bed.brokers[0]->attach_broker_link(conn, BrokerId{1});
  bed.net.pump();

  // Broker 0's numbering for this neighbor is at 2, the new instance starts
  // from nothing: the handshake's baseline rebases it, and the next forward
  // is consumed instead of stalling on a gap that can never fill.
  pub.publish(0, bed.trade("IBM", 100.0, 3));
  bed.net.pump();
  const auto deliveries = sub2.take_deliveries();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].event.value(2).as_int(), 3);
}

}  // namespace
}  // namespace gryphon
