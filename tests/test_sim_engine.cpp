// Parallel discrete-event engine differentials: the conservative-lookahead
// parallel run must produce a SimResult bit-identical to the serial run, and
// the in-sim dynamics (churn, link faults, oracle sampling, aggregate
// control plane) must keep their contracts.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace gryphon {
namespace {

SimSpec figure6_spec(std::uint64_t seed) {
  SimSpec spec;
  spec.seed = seed;
  spec.topology.kind = TopologyKind::kFigure6;
  spec.workload.subscriptions = 400;
  spec.workload.events = 60;
  spec.workload.rate_eps = 40.0;
  spec.verify.verify_single_copy_per_link = true;
  return spec;
}

TEST(EngineDifferential, ParallelIdenticalToSerialOnFigureSix) {
  // The acceptance differential: identical SimSpec except engine.threads
  // must yield the same SimResult in every deterministic field, for every
  // protocol, across seeds.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const Protocol protocol :
         {Protocol::kLinkMatching, Protocol::kFlooding, Protocol::kMatchFirst}) {
      SimSpec serial = figure6_spec(seed);
      serial.protocol = protocol;
      SimSpec parallel = serial;
      parallel.engine.threads = 4;
      const SimResult s = simulate(serial);
      const SimResult p = simulate(parallel);
      EXPECT_EQ(p.engine_threads, 4u);
      EXPECT_TRUE(same_outcome(s, p))
          << "seed " << seed << " protocol " << to_string(protocol);
      EXPECT_EQ(s.missing_deliveries, 0u);
      EXPECT_EQ(s.duplicate_link_copies, 0u);
    }
  }
}

TEST(EngineDifferential, ThreadCountBeyondBrokersIsClamped) {
  SimSpec serial = figure6_spec(5);
  SimSpec wide = serial;
  wide.engine.threads = 64;  // more workers than the 39 brokers
  EXPECT_TRUE(same_outcome(simulate(serial), simulate(wide)));
}

TEST(EngineDifferential, RepeatedRunsAreBitIdentical) {
  Simulation sim(figure6_spec(8));
  const SimResult first = sim.run();
  const SimResult second = sim.run();
  EXPECT_TRUE(same_outcome(first, second));
}

TEST(EngineDynamics, ChurnAppliesOpsAndRunsStayRepeatable) {
  SimSpec spec = figure6_spec(4);
  spec.workload.churn_rate_eps = 200.0;
  Simulation sim(spec);
  const SimResult first = sim.run();
  EXPECT_GT(first.churn_subscribes + first.churn_unsubscribes, 0u);
  // The publish-time oracle cannot track in-flight churn: verification off.
  EXPECT_EQ(first.oracle_sampled_fraction, 0.0);
  EXPECT_EQ(first.oracle_events_verified, 0u);
  // Churn is rolled back after the run, so a second run sees the same
  // control-plane state and reproduces the outcome exactly.
  EXPECT_TRUE(same_outcome(first, sim.run()));
  // And the serial/parallel differential holds under churn too.
  SimSpec parallel = spec;
  parallel.engine.threads = 3;
  EXPECT_TRUE(same_outcome(first, simulate(parallel)));
}

TEST(EngineDynamics, LinkFaultsDelayButNeverLoseDeliveries) {
  SimSpec spec = figure6_spec(6);
  spec.workload.link_mtbf_seconds = 0.4;  // frequent outages over a ~1.5s run
  spec.workload.link_mttr_seconds = 0.3;
  spec.limits.drain_limit = ticks_from_seconds(120);
  const SimResult faulty = simulate(spec);
  EXPECT_GT(faulty.link_outages, 0u);
  // A downed link holds frames and releases them on heal: delayed, not lost.
  EXPECT_EQ(faulty.missing_deliveries, 0u);
  EXPECT_EQ(faulty.spurious_deliveries, 0u);
  EXPECT_EQ(faulty.duplicate_deliveries, 0u);

  SimSpec clean = spec;
  clean.workload.link_mtbf_seconds = 0.0;
  const SimResult baseline = simulate(clean);
  EXPECT_EQ(baseline.link_outages, 0u);
  EXPECT_EQ(faulty.deliveries, baseline.deliveries);
  EXPECT_GT(faulty.latency_ticks, baseline.latency_ticks);

  SimSpec parallel = spec;
  parallel.engine.threads = 4;
  EXPECT_TRUE(same_outcome(faulty, simulate(parallel)));
}

TEST(EngineControlPlane, AggregateMatchesExactTrafficOnLinkMatching) {
  SimSpec exact = figure6_spec(7);
  exact.engine.control_plane = ControlPlaneMode::kExact;
  SimSpec aggregate = exact;
  aggregate.engine.control_plane = ControlPlaneMode::kAggregate;
  const SimResult e = simulate(exact);
  const SimResult a = simulate(aggregate);
  EXPECT_STREQ(e.control_plane, "exact");
  EXPECT_STREQ(a.control_plane, "aggregate");
  // Aggregate mode models matching steps but must reproduce the exact
  // traffic: identical deliveries, copies, and bytes, with no oracle misses.
  EXPECT_EQ(a.deliveries, e.deliveries);
  EXPECT_EQ(a.broker_messages, e.broker_messages);
  EXPECT_EQ(a.client_messages, e.client_messages);
  EXPECT_EQ(a.bytes_on_wire, e.bytes_on_wire);
  EXPECT_EQ(a.missing_deliveries, 0u);
  EXPECT_EQ(a.spurious_deliveries, 0u);
  EXPECT_EQ(a.duplicate_link_copies, 0u);
  EXPECT_TRUE(e.steps_exact);
  EXPECT_FALSE(a.steps_exact);
}

TEST(EngineControlPlane, AutoSwitchesOnThresholds) {
  SimSpec spec = figure6_spec(9);
  spec.engine.exact_max_brokers = 16;  // 39 brokers exceeds this
  const SimResult a = simulate(spec);
  EXPECT_STREQ(a.control_plane, "aggregate");
  spec.engine.exact_max_brokers = 64;
  const SimResult e = simulate(spec);
  EXPECT_STREQ(e.control_plane, "exact");
}

TEST(EngineOracle, SamplingVerifiesAFractionAndReportsIt) {
  SimSpec spec = figure6_spec(10);
  spec.verify.oracle_sample = 0.25;
  const SimResult result = simulate(spec);
  EXPECT_EQ(result.oracle_sampled_fraction, 0.25);
  EXPECT_GT(result.oracle_events_verified, 0u);
  EXPECT_LT(result.oracle_events_verified, result.events_published);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
}

TEST(EngineScaleTopologies, ExactDeliveryOnGeneratedTopologies) {
  // Small instances of each scale family must still deliver exactly (full
  // oracle, single-copy check) and hold the serial/parallel differential.
  const auto check = [](SimSpec spec) {
    spec.workload.subscriptions = 200;
    spec.workload.events = 40;
    spec.workload.rate_eps = 50.0;
    spec.verify.verify_single_copy_per_link = true;
    const SimResult serial = simulate(spec);
    EXPECT_EQ(serial.missing_deliveries, 0u) << to_string(spec.topology.kind);
    EXPECT_EQ(serial.spurious_deliveries, 0u);
    EXPECT_EQ(serial.duplicate_deliveries, 0u);
    EXPECT_EQ(serial.duplicate_link_copies, 0u);
    EXPECT_GT(serial.deliveries, 0u);
    spec.engine.threads = 4;
    EXPECT_TRUE(same_outcome(serial, simulate(spec))) << to_string(spec.topology.kind);
  };

  SimSpec fat_tree;
  fat_tree.seed = 21;
  fat_tree.topology.kind = TopologyKind::kFatTree;
  fat_tree.topology.fat_tree.pods = 4;
  check(fat_tree);

  SimSpec waxman;
  waxman.seed = 22;
  waxman.topology.kind = TopologyKind::kWaxman;
  waxman.topology.waxman.brokers = 30;
  check(waxman);

  SimSpec wan;
  wan.seed = 23;
  wan.topology.kind = TopologyKind::kWan;
  wan.topology.wan.regions = 3;
  wan.topology.wan.brokers_per_region = 8;
  check(wan);
}

TEST(EngineResult, WallClockAndProvenancePopulated) {
  const SimResult result = simulate(figure6_spec(12));
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_EQ(result.engine_threads, 1u);
  EXPECT_EQ(result.broker_count, 39u);
  EXPECT_EQ(result.subscriptions, 400u);
  EXPECT_EQ(result.oracle_sampled_fraction, 1.0);
}

}  // namespace
}  // namespace gryphon
