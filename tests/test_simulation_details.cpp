// Focused simulator behaviours: overload detection, drain timeouts,
// accounting, and monotonicity of overload in the publish rate.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

/// A 3-broker line with 2 clients per broker and a small schema; the
/// publisher is broker 0 (the single-publisher spec default on a line).
SimSpec small_spec(double rate, std::uint64_t seed = 3) {
  SimSpec spec;
  spec.seed = seed;
  spec.attributes = 4;
  spec.values_per_attribute = 3;
  spec.topology.kind = TopologyKind::kLine;
  spec.topology.brokers = 3;
  spec.topology.clients_per_broker = 2;
  spec.topology.min_delay_ms = 5.0;
  spec.topology.client_delay_ms = 1.0;
  spec.workload.subscriptions = 30;
  spec.workload.events = 100;
  spec.workload.publishers = 1;
  spec.workload.rate_eps = rate;
  spec.workload.subscription_config = SubscriptionWorkloadConfig{0.9, 0.9, 1.0};
  return spec;
}

TEST(SimDetails, SustainableRateDrainsCompletely) {
  const auto result = simulate(small_spec(100.0));
  EXPECT_TRUE(result.drained);
  EXPECT_FALSE(result.overloaded);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.events_published, 100u);
}

TEST(SimDetails, BacklogThresholdTriggersOverload) {
  SimSpec spec = small_spec(5e6);
  spec.limits.overload_backlog_threshold = 10;
  // 100 events in ~1 tick gaps: the publisher broker's queue must exceed 10.
  const auto result = simulate(spec);
  EXPECT_TRUE(result.overloaded);
  EXPECT_GE(result.max_backlog, 10u);
}

TEST(SimDetails, OverloadIsMonotoneInRate) {
  SimSpec spec = small_spec(100.0);
  spec.verify.verify_deliveries = false;
  // Only 100 events are published, so the default threshold (100) can
  // never be reached even at infinite rate; use a smaller one.
  spec.limits.overload_backlog_threshold = 25;
  Simulation sim(spec);
  bool seen_overload = false;
  for (const double rate : {50.0, 500.0, 5000.0, 50000.0, 500000.0, 5e6}) {
    const bool overloaded = sim.run_at_rate(rate).overloaded;
    if (seen_overload) {
      EXPECT_TRUE(overloaded) << "non-monotone overload at rate " << rate;
    }
    seen_overload |= overloaded;
  }
  EXPECT_TRUE(seen_overload);
}

TEST(SimDetails, DrainTimeoutMarksOverloadAndMissingDeliveries) {
  // Publish fast enough that forwarded copies are always in flight when the
  // last event is published; the 1-tick drain budget then must expire.
  SimSpec spec = small_spec(5000.0);
  spec.limits.drain_limit = 1;  // one tick after the last publish: nothing can finish
  spec.limits.overload_backlog_threshold = 1000000;  // only the timeout can trigger
  const auto result = simulate(spec);
  EXPECT_FALSE(result.drained);
  EXPECT_TRUE(result.overloaded);
  EXPECT_GT(result.missing_deliveries, 0u);
}

TEST(SimDetails, LatencyReflectsHopDelays) {
  // A subscriber 2 brokers away: latency >= 2 * 5ms + 1ms client link.
  SimSpec spec;
  spec.schema = make_synthetic_schema(2, 2);
  spec.topology.kind = TopologyKind::kLine;
  spec.topology.brokers = 3;
  spec.topology.clients_per_broker = 1;
  spec.topology.min_delay_ms = 5.0;
  spec.topology.client_delay_ms = 1.0;
  const GeneratedTopology preview = build_topology(spec.topology, spec.seed);
  const ClientId far_client = preview.network.clients_of(BrokerId{2})[0];
  spec.workload.scripted.subscriptions = {
      {SubscriptionId{1}, Subscription::match_all(spec.schema), far_client}};
  spec.workload.scripted.events = {Event(spec.schema, {Value(0), Value(0)})};
  spec.workload.scripted.schedule = {PublishRecord{0, BrokerId{0}, 0}};
  const auto result = simulate(spec);
  EXPECT_EQ(result.deliveries, 1u);
  EXPECT_GE(result.mean_delivery_latency_ms, 11.0);
  EXPECT_LT(result.mean_delivery_latency_ms, 20.0);
  ASSERT_EQ(result.per_hop.size(), 1u);
  EXPECT_EQ(result.per_hop.begin()->first, 3);  // three brokers visited
}

TEST(SimDetails, BytesAccountingScalesWithMessages) {
  const auto result = simulate(small_spec(200.0));
  const auto copies = result.broker_messages + result.client_messages;
  if (copies == 0) GTEST_SKIP() << "no traffic drawn";
  // Link matching carries no destination lists: bytes = payload * copies.
  EXPECT_EQ(result.bytes_on_wire % copies, 0u);
  EXPECT_GT(result.bytes_on_wire / copies, 16u);
}

TEST(SimDetails, CentralizedStepsIndependentOfProtocol) {
  SimSpec lm_spec = small_spec(100.0);
  SimSpec fl_spec = lm_spec;
  fl_spec.protocol = Protocol::kFlooding;
  const auto lm = simulate(lm_spec);
  const auto fl = simulate(fl_spec);
  EXPECT_EQ(lm.centralized_steps, fl.centralized_steps);
  EXPECT_EQ(lm.deliveries, fl.deliveries);
}

TEST(SimDetails, UtilizationBoundedAndPositive) {
  const auto result = simulate(small_spec(500.0));
  EXPECT_GT(result.max_utilization, 0.0);
  EXPECT_LE(result.max_utilization, 1.5);  // cannot exceed ~1 while draining
}

TEST(SimDetails, BadScheduleIndexThrows) {
  SimSpec spec = small_spec(100.0);
  spec.workload.scripted.schedule = {PublishRecord{0, BrokerId{0}, spec.workload.events}};
  EXPECT_THROW(Simulation{spec}, std::invalid_argument);
}

TEST(SimDetails, BackgroundLoadConsumesCapacity) {
  SimSpec quiet = small_spec(2000.0);
  SimSpec noisy = quiet;
  noisy.costs.background_rate_per_broker = 30000.0;  // heavy untracked load
  const auto without = simulate(quiet);
  const auto with = simulate(noisy);
  // Background messages burn CPU at every broker: utilization rises, and
  // tracked deliveries stay identical (background is invisible traffic).
  EXPECT_GT(with.max_utilization, without.max_utilization);
  EXPECT_EQ(with.deliveries, without.deliveries);
  EXPECT_EQ(with.missing_deliveries, 0u);
}

TEST(SimDetails, BackgroundLoadLowersSaturation) {
  SimSpec quiet_spec = small_spec(100.0);
  quiet_spec.verify.verify_deliveries = false;
  quiet_spec.limits.overload_backlog_threshold = 25;
  SimSpec noisy_spec = quiet_spec;
  noisy_spec.costs.background_rate_per_broker = 100000.0;
  Simulation quiet(quiet_spec);
  Simulation noisy(noisy_spec);
  // A rate the quiet network sustains but the loaded one cannot.
  bool quiet_ok = false, noisy_died = false;
  for (const double rate : {2000.0, 8000.0, 32000.0}) {
    const bool q = quiet.run_at_rate(rate).overloaded;
    const bool n = noisy.run_at_rate(rate).overloaded;
    if (!q && n) {
      quiet_ok = true;
      noisy_died = true;
      break;
    }
  }
  EXPECT_TRUE(quiet_ok && noisy_died)
      << "background load should reduce the sustainable tracked rate";
}

TEST(SimDetails, PartialScheduleVerifiesOnlyPublishedEvents) {
  SimSpec spec = small_spec(100.0);
  // Publish only the first 10 of the 100 generated events.
  for (std::size_t i = 0; i < 10; ++i) {
    spec.workload.scripted.schedule.push_back(
        PublishRecord{static_cast<Ticks>(1 + i * 1000), BrokerId{0}, i});
  }
  const auto result = simulate(spec);
  EXPECT_EQ(result.events_published, 10u);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
}

}  // namespace
}  // namespace gryphon
