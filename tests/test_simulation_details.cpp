// Focused simulator behaviours: overload detection, drain timeouts,
// accounting, and monotonicity of overload in the publish rate.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

struct SmallBed {
  BrokerNetwork net = make_line(3, ticks_from_millis(5), 2, ticks_from_millis(1));
  SchemaPtr schema = make_synthetic_schema(4, 3);
  std::vector<SimSubscription> subs;
  std::vector<Event> events;

  explicit SmallBed(std::size_t n_subs = 30, std::size_t n_events = 100) {
    Rng rng(3);
    SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.9, 1.0});
    for (std::size_t i = 0; i < n_subs; ++i) {
      subs.push_back(SimSubscription{
          SubscriptionId{static_cast<std::int64_t>(i)}, gen.generate(rng),
          ClientId{static_cast<ClientId::rep_type>(rng.below(net.client_count()))}});
    }
    EventGenerator ev_gen(schema);
    for (std::size_t i = 0; i < n_events; ++i) events.push_back(ev_gen.generate(rng));
  }

  SimResult run(SimConfig config, double rate, std::uint64_t seed = 1) {
    BrokerSimulation sim(net, schema, {BrokerId{0}}, subs, PstMatcherOptions{}, config);
    Rng rng(seed);
    const auto schedule = make_poisson_schedule({BrokerId{0}}, events.size(), rate, rng);
    return sim.run(events, schedule);
  }
};

TEST(SimDetails, SustainableRateDrainsCompletely) {
  SmallBed bed;
  SimConfig config;
  const auto result = bed.run(config, 100.0);
  EXPECT_TRUE(result.drained);
  EXPECT_FALSE(result.overloaded);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.events_published, bed.events.size());
}

TEST(SimDetails, BacklogThresholdTriggersOverload) {
  SmallBed bed;
  SimConfig config;
  config.overload_backlog_threshold = 10;
  // 100 events in ~1 tick gaps: the publisher broker's queue must exceed 10.
  const auto result = bed.run(config, 5e6);
  EXPECT_TRUE(result.overloaded);
  EXPECT_GE(result.max_backlog, 10u);
}

TEST(SimDetails, OverloadIsMonotoneInRate) {
  SmallBed bed;
  SimConfig config;
  config.verify_deliveries = false;
  // Only 100 events are published, so the default threshold (100) can
  // never be reached even at infinite rate; use a smaller one.
  config.overload_backlog_threshold = 25;
  bool seen_overload = false;
  for (const double rate : {50.0, 500.0, 5000.0, 50000.0, 500000.0, 5e6}) {
    const bool overloaded = bed.run(config, rate).overloaded;
    if (seen_overload) {
      EXPECT_TRUE(overloaded) << "non-monotone overload at rate " << rate;
    }
    seen_overload |= overloaded;
  }
  EXPECT_TRUE(seen_overload);
}

TEST(SimDetails, DrainTimeoutMarksOverloadAndMissingDeliveries) {
  SmallBed bed;
  SimConfig config;
  config.drain_limit = 1;  // one tick after the last publish: nothing can finish
  config.overload_backlog_threshold = 1000000;  // only the timeout can trigger
  const auto result = bed.run(config, 100.0);
  EXPECT_FALSE(result.drained);
  EXPECT_TRUE(result.overloaded);
  EXPECT_GT(result.missing_deliveries, 0u);
}

TEST(SimDetails, LatencyReflectsHopDelays) {
  // A subscriber 2 brokers away: latency >= 2 * 5ms + 1ms client link.
  BrokerNetwork net = make_line(3, ticks_from_millis(5), 1, ticks_from_millis(1));
  const auto schema = make_synthetic_schema(2, 2);
  const ClientId far_client = net.clients_of(BrokerId{2})[0];
  std::vector<SimSubscription> subs{
      {SubscriptionId{1}, Subscription::match_all(schema), far_client}};
  std::vector<Event> events{Event(schema, {Value(0), Value(0)})};
  SimConfig config;
  BrokerSimulation sim(net, schema, {BrokerId{0}}, subs, PstMatcherOptions{}, config);
  const auto result = sim.run(events, {PublishRecord{0, BrokerId{0}, 0}});
  EXPECT_EQ(result.deliveries, 1u);
  EXPECT_GE(result.mean_delivery_latency_ms, 11.0);
  EXPECT_LT(result.mean_delivery_latency_ms, 20.0);
  ASSERT_EQ(result.per_hop.size(), 1u);
  EXPECT_EQ(result.per_hop.begin()->first, 3);  // three brokers visited
}

TEST(SimDetails, BytesAccountingScalesWithMessages) {
  SmallBed bed;
  SimConfig config;
  const auto result = bed.run(config, 200.0);
  const auto copies = result.broker_messages + result.client_messages;
  if (copies == 0) GTEST_SKIP() << "no traffic drawn";
  // Link matching carries no destination lists: bytes = payload * copies.
  EXPECT_EQ(result.bytes_on_wire % copies, 0u);
  EXPECT_GT(result.bytes_on_wire / copies, 16u);
}

TEST(SimDetails, CentralizedStepsIndependentOfProtocol) {
  SmallBed bed;
  SimConfig lm_config;
  SimConfig fl_config;
  fl_config.protocol = Protocol::kFlooding;
  const auto lm = bed.run(lm_config, 100.0);
  const auto fl = bed.run(fl_config, 100.0);
  EXPECT_EQ(lm.centralized_steps, fl.centralized_steps);
  EXPECT_EQ(lm.deliveries, fl.deliveries);
}

TEST(SimDetails, UtilizationBoundedAndPositive) {
  SmallBed bed;
  SimConfig config;
  const auto result = bed.run(config, 500.0);
  EXPECT_GT(result.max_utilization, 0.0);
  EXPECT_LE(result.max_utilization, 1.5);  // cannot exceed ~1 while draining
}

TEST(SimDetails, BadScheduleIndexThrows) {
  SmallBed bed;
  SimConfig config;
  BrokerSimulation sim(bed.net, bed.schema, {BrokerId{0}}, bed.subs, PstMatcherOptions{},
                       config);
  EXPECT_THROW(sim.run(bed.events, {PublishRecord{0, BrokerId{0}, bed.events.size()}}),
               std::invalid_argument);
}


TEST(SimDetails, BackgroundLoadConsumesCapacity) {
  SmallBed bed;
  SimConfig quiet;
  SimConfig noisy;
  noisy.background_rate_per_broker = 30000.0;  // heavy untracked load
  const auto without = bed.run(quiet, 2000.0);
  const auto with = bed.run(noisy, 2000.0);
  // Background messages burn CPU at every broker: utilization rises, and
  // tracked deliveries stay identical (background is invisible traffic).
  EXPECT_GT(with.max_utilization, without.max_utilization);
  EXPECT_EQ(with.deliveries, without.deliveries);
  EXPECT_EQ(with.missing_deliveries, 0u);
}

TEST(SimDetails, BackgroundLoadLowersSaturation) {
  SmallBed bed;
  SimConfig quiet;
  quiet.verify_deliveries = false;
  quiet.overload_backlog_threshold = 25;
  SimConfig noisy = quiet;
  noisy.background_rate_per_broker = 100000.0;
  // A rate the quiet network sustains but the loaded one cannot.
  bool quiet_ok = false, noisy_died = false;
  for (const double rate : {2000.0, 8000.0, 32000.0}) {
    const bool q = bed.run(quiet, rate).overloaded;
    const bool n = bed.run(noisy, rate).overloaded;
    if (!q && n) {
      quiet_ok = true;
      noisy_died = true;
      break;
    }
  }
  EXPECT_TRUE(quiet_ok && noisy_died)
      << "background load should reduce the sustainable tracked rate";
}


TEST(SimDetails, PartialScheduleVerifiesOnlyPublishedEvents) {
  SmallBed bed;
  SimConfig config;
  BrokerSimulation sim(bed.net, bed.schema, {BrokerId{0}}, bed.subs, PstMatcherOptions{},
                       config);
  // Publish only the first 10 of the 100 generated events.
  std::vector<PublishRecord> schedule;
  for (std::size_t i = 0; i < 10; ++i) {
    schedule.push_back(PublishRecord{static_cast<Ticks>(1 + i * 1000), BrokerId{0}, i});
  }
  const auto result = sim.run(bed.events, schedule);
  EXPECT_EQ(result.events_published, 10u);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
}

}  // namespace
}  // namespace gryphon
