#include <gtest/gtest.h>

#include "topology/builders.h"
#include "topology/network.h"
#include "topology/routing_table.h"

namespace gryphon {
namespace {

TEST(BrokerNetwork, PortsAndClients) {
  BrokerNetwork net;
  const BrokerId a = net.add_broker();
  const BrokerId b = net.add_broker();
  net.connect(a, b, 10);
  const ClientId c = net.add_client(a, 1);

  EXPECT_EQ(net.broker_count(), 2u);
  EXPECT_EQ(net.client_count(), 1u);
  ASSERT_EQ(net.port_count(a), 2u);
  EXPECT_EQ(net.ports(a)[0].kind, BrokerNetwork::PortKind::kBroker);
  EXPECT_EQ(net.ports(a)[0].peer_broker, b);
  EXPECT_EQ(net.ports(a)[0].delay, 10);
  EXPECT_EQ(net.ports(a)[1].kind, BrokerNetwork::PortKind::kClient);
  EXPECT_EQ(net.ports(a)[1].peer_client, c);
  EXPECT_EQ(net.client_home(c), a);
  EXPECT_EQ(net.client_port(c).value, 1);
  EXPECT_EQ(net.clients_of(a), (std::vector<ClientId>{c}));
  EXPECT_TRUE(net.clients_of(b).empty());
  EXPECT_EQ(net.port_to_broker(a, b).value, 0);
  EXPECT_EQ(net.port_to_broker(b, a).value, 0);
}

TEST(BrokerNetwork, RejectsBadLinks) {
  BrokerNetwork net;
  const BrokerId a = net.add_broker();
  const BrokerId b = net.add_broker();
  EXPECT_THROW(net.connect(a, a, 1), std::invalid_argument);
  EXPECT_THROW(net.connect(a, b, -1), std::invalid_argument);
  net.connect(a, b, 1);
  EXPECT_THROW(net.connect(a, b, 2), std::invalid_argument);  // duplicate
  EXPECT_THROW(net.connect(a, BrokerId{7}, 1), std::out_of_range);
  EXPECT_THROW((void)net.port_to_broker(b, BrokerId{1}), std::invalid_argument);
}

TEST(RoutingTable, LineTopologyNextHops) {
  const auto net = make_line(4, 10, 0, 1);
  RoutingTable routing(net);
  const BrokerId b0{0}, b1{1}, b2{2}, b3{3};
  EXPECT_EQ(routing.distance(b0, b3), 30);
  EXPECT_EQ(routing.hop_count(b0, b3), 3);
  EXPECT_EQ(routing.distance(b2, b2), 0);
  // Next hop from 0 toward 3 is the port to 1.
  EXPECT_EQ(routing.next_hop(b0, b3), net.port_to_broker(b0, b1));
  EXPECT_EQ(routing.next_hop(b1, b3), net.port_to_broker(b1, b2));
  EXPECT_EQ(routing.next_hop(b3, b0), net.port_to_broker(b3, b2));
}

TEST(RoutingTable, PrefersLowerDelayPath) {
  // Triangle with a slow direct link and a fast two-hop detour.
  BrokerNetwork net;
  const BrokerId a = net.add_broker();
  const BrokerId b = net.add_broker();
  const BrokerId c = net.add_broker();
  net.connect(a, b, 100);
  net.connect(a, c, 10);
  net.connect(c, b, 10);
  RoutingTable routing(net);
  EXPECT_EQ(routing.distance(a, b), 20);
  EXPECT_EQ(routing.next_hop(a, b), net.port_to_broker(a, c));
}

TEST(RoutingTable, EqualDelayPrefersFewerHops) {
  BrokerNetwork net;
  const BrokerId a = net.add_broker();
  const BrokerId b = net.add_broker();
  const BrokerId c = net.add_broker();
  net.connect(a, b, 20);  // direct, one hop
  net.connect(a, c, 10);
  net.connect(c, b, 10);  // detour, same total delay
  RoutingTable routing(net);
  EXPECT_EQ(routing.distance(a, b), 20);
  EXPECT_EQ(routing.hop_count(a, b), 1);
  EXPECT_EQ(routing.next_hop(a, b), net.port_to_broker(a, b));
}

TEST(RoutingTable, ClientNextHop) {
  const auto net = make_line(3, 10, 1, 1);
  RoutingTable routing(net);
  const ClientId remote_client = net.clients_of(BrokerId{2})[0];
  EXPECT_EQ(routing.next_hop_to_client(BrokerId{0}, remote_client),
            net.port_to_broker(BrokerId{0}, BrokerId{1}));
  EXPECT_EQ(routing.next_hop_to_client(BrokerId{2}, remote_client),
            net.client_port(remote_client));
}

TEST(RoutingTable, DisconnectedComponentsUnreachable) {
  BrokerNetwork net;
  const BrokerId a = net.add_broker();
  const BrokerId b = net.add_broker();
  RoutingTable routing(net);
  EXPECT_FALSE(routing.reachable(a, b));
  EXPECT_TRUE(routing.reachable(a, a));
}

TEST(Figure6, Shape) {
  const auto topo = make_figure6();
  EXPECT_EQ(topo.network.broker_count(), 39u);
  EXPECT_EQ(topo.network.client_count(), 390u);  // 10 per broker
  EXPECT_EQ(topo.roots.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(topo.interior[static_cast<std::size_t>(r)].size(), 3u);
    EXPECT_EQ(topo.leaves[static_cast<std::size_t>(r)].size(), 9u);
  }
  EXPECT_EQ(topo.publisher_brokers.size(), 3u);
  // Publishers live in three distinct regions.
  EXPECT_EQ(topo.region_of[static_cast<std::size_t>(topo.publisher_brokers[0].value)], 0);
  EXPECT_EQ(topo.region_of[static_cast<std::size_t>(topo.publisher_brokers[1].value)], 1);
  EXPECT_EQ(topo.region_of[static_cast<std::size_t>(topo.publisher_brokers[2].value)], 2);
}

TEST(Figure6, HopDelays) {
  const auto topo = make_figure6();
  const auto& net = topo.network;
  // Root-to-root links: 65 ms.
  const auto root_port = net.port_to_broker(topo.roots[0], topo.roots[1]);
  EXPECT_EQ(net.ports(topo.roots[0])[static_cast<std::size_t>(root_port.value)].delay,
            ticks_from_millis(65));
  // Root to interior: 25 ms.
  const auto mid = topo.interior[0][0];
  const auto mid_port = net.port_to_broker(topo.roots[0], mid);
  EXPECT_EQ(net.ports(topo.roots[0])[static_cast<std::size_t>(mid_port.value)].delay,
            ticks_from_millis(25));
  // Interior to leaf: 10 ms.
  const auto leaf = topo.leaves[0][0];
  const auto leaf_port = net.port_to_broker(mid, leaf);
  EXPECT_EQ(net.ports(mid)[static_cast<std::size_t>(leaf_port.value)].delay,
            ticks_from_millis(10));
  // Client links: 1 ms.
  EXPECT_EQ(net.client_delay(topo.subscribers[0]), ticks_from_millis(1));
}

TEST(Figure6, FullyReachableAndLateralLinksExist) {
  const auto topo = make_figure6();
  RoutingTable routing(topo.network);
  for (std::size_t i = 0; i < 39; ++i) {
    EXPECT_TRUE(routing.reachable(BrokerId{0}, BrokerId{static_cast<BrokerId::rep_type>(i)}));
  }
  // Default options add 2 lateral links; total broker-broker edges =
  // 3 roots * 3 + 9 * 3 interior-leaf... count ports instead: every broker
  // port count equals tree links + laterals + clients.
  std::size_t broker_ports = 0;
  for (std::size_t b = 0; b < 39; ++b) {
    for (const auto& port : topo.network.ports(BrokerId{static_cast<BrokerId::rep_type>(b)})) {
      if (port.kind == BrokerNetwork::PortKind::kBroker) ++broker_ports;
    }
  }
  // Tree edges: 3 * 12 = 36; root triangle: 3; laterals: 2. Each edge has
  // two ports.
  EXPECT_EQ(broker_ports, 2u * (36 + 3 + 2));
}

TEST(Builders, StarShape) {
  const auto net = make_star(5, 7, 2, 1);
  EXPECT_EQ(net.broker_count(), 5u);
  EXPECT_EQ(net.client_count(), 10u);
  RoutingTable routing(net);
  EXPECT_EQ(routing.hop_count(BrokerId{1}, BrokerId{4}), 2);
  EXPECT_EQ(routing.distance(BrokerId{1}, BrokerId{4}), 14);
}

TEST(Builders, RandomTreeConnected) {
  Rng rng(3);
  const auto net = make_random_tree(25, rng, 5, 50, 2, 1);
  RoutingTable routing(net);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_TRUE(routing.reachable(BrokerId{0}, BrokerId{static_cast<BrokerId::rep_type>(i)}));
  }
}

TEST(Builders, TreeLikeAddsExtraLinks) {
  Rng rng(9);
  const auto tree = make_random_tree(20, rng, 5, 50, 0, 1);
  Rng rng2(9);
  const auto tree_like = make_random_tree_like(20, rng2, 5, 50, 0, 1, 4);
  std::size_t tree_ports = 0, tree_like_ports = 0;
  for (std::size_t b = 0; b < 20; ++b) {
    tree_ports += tree.ports(BrokerId{static_cast<BrokerId::rep_type>(b)}).size();
    tree_like_ports += tree_like.ports(BrokerId{static_cast<BrokerId::rep_type>(b)}).size();
  }
  EXPECT_EQ(tree_like_ports, tree_ports + 2 * 4);
}

}  // namespace
}  // namespace gryphon
