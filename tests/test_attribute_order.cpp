#include "matching/attribute_order.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/pst.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

TEST(AttributeOrder, IdentityShape) {
  const auto schema = make_synthetic_schema(4, 3);
  EXPECT_EQ(identity_order(schema), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(AttributeOrder, FewestDontCaresFirst) {
  const auto schema = make_synthetic_schema(3, 3);
  // a1 always *, a2 never *, a3 sometimes *.
  std::vector<Subscription> sample;
  for (int i = 0; i < 4; ++i) {
    std::vector<AttributeTest> tests(3);
    tests[1] = AttributeTest::equals(Value(0));
    if (i % 2 == 0) tests[2] = AttributeTest::equals(Value(1));
    sample.emplace_back(schema, tests);
  }
  EXPECT_EQ(order_by_fewest_dont_cares(schema, sample), (std::vector<std::size_t>{1, 2, 0}));
}

TEST(AttributeOrder, EmptySampleIsIdentity) {
  const auto schema = make_synthetic_schema(5, 2);
  EXPECT_EQ(order_by_fewest_dont_cares(schema, {}), identity_order(schema));
}

TEST(AttributeOrder, TiesKeepSchemaOrder) {
  const auto schema = make_synthetic_schema(3, 2);
  std::vector<Subscription> sample{Subscription::match_all(schema)};
  EXPECT_EQ(order_by_fewest_dont_cares(schema, sample), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(AttributeOrder, HeuristicReducesMatchingSteps) {
  // Paper Section 2: "performance seems to be better if the attributes near
  // the root are chosen to have the fewest number of subscriptions labeled
  // with a *". Build a workload where late attributes are selective and
  // early ones are mostly don't-care, and compare step counts.
  const auto schema = make_synthetic_schema(8, 4);
  Rng rng(31);
  std::vector<Subscription> subs;
  for (int i = 0; i < 800; ++i) {
    std::vector<AttributeTest> tests(8);
    for (std::size_t a = 0; a < 8; ++a) {
      // Selectivity grows with the attribute index (reverse of identity).
      const double p_non_star = 0.1 + 0.1 * static_cast<double>(a);
      if (rng.chance(p_non_star)) {
        tests[a] = AttributeTest::equals(Value(static_cast<int>(rng.below(4))));
      }
    }
    subs.emplace_back(schema, tests);
  }

  Pst in_schema_order(schema, identity_order(schema));
  Pst in_heuristic_order(schema, order_by_fewest_dont_cares(schema, subs));
  for (std::size_t i = 0; i < subs.size(); ++i) {
    in_schema_order.add(SubscriptionId{static_cast<std::int64_t>(i)}, subs[i]);
    in_heuristic_order.add(SubscriptionId{static_cast<std::int64_t>(i)}, subs[i]);
  }

  EventGenerator events(schema);
  MatchStats base_stats, heuristic_stats;
  std::vector<SubscriptionId> a, b;
  for (int i = 0; i < 200; ++i) {
    const Event e = events.generate(rng);
    a.clear();
    b.clear();
    in_schema_order.match(e, a, &base_stats);
    in_heuristic_order.match(e, b, &heuristic_stats);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
  EXPECT_LT(heuristic_stats.nodes_visited, base_stats.nodes_visited);
}

}  // namespace
}  // namespace gryphon
