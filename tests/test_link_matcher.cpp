// The mask-refinement search of paper Section 3.3.
#include "routing/link_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/rng.h"
#include "matching/attribute_order.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

Event ev(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<Value> v;
  for (const int x : values) v.emplace_back(x);
  return Event(schema, std::move(v));
}

class LinkMatchTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kLinks = 4;
  SchemaPtr schema_ = make_synthetic_schema(4, 3);
  Pst tree_{schema_, identity_order(schema_)};
  std::unordered_map<SubscriptionId, LinkIndex> links_;
  std::int64_t next_id_{0};
  std::vector<std::pair<Subscription, LinkIndex>> subs_;

  SubscriptionLinkFn link_fn() {
    return [this](SubscriptionId id) { return links_.at(id); };
  }

  void add(std::vector<int> values, int link) {
    const SubscriptionId id{next_id_++};
    links_[id] = LinkIndex{link};
    const auto s = sub_eq(schema_, std::move(values));
    tree_.add(id, s);
    subs_.emplace_back(s, LinkIndex{link});
  }

  /// Ground truth: links with at least one matching subscriber.
  std::set<int> expected_links(const Event& e) {
    std::set<int> out;
    for (const auto& [s, link] : subs_) {
      if (s.matches(e)) out.insert(link.value);
    }
    return out;
  }

  std::set<int> yes_set(const TritVector& mask) {
    std::set<int> out;
    for (const LinkIndex l : mask.yes_links()) out.insert(l.value);
    return out;
  }
};

TEST_F(LinkMatchTest, ForwardsExactlyToMatchingLinks) {
  add({0, -1, -1, -1}, 0);
  add({1, -1, -1, -1}, 1);
  add({0, 1, -1, -1}, 2);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  const TritVector init(kLinks, Trit::Maybe);

  const auto r1 = link_match(ann, ev(schema_, {0, 1, 0, 0}), init);
  EXPECT_EQ(yes_set(r1.mask), (std::set<int>{0, 2}));
  EXPECT_FALSE(r1.mask.has_maybe());

  const auto r2 = link_match(ann, ev(schema_, {1, 0, 0, 0}), init);
  EXPECT_EQ(yes_set(r2.mask), (std::set<int>{1}));

  const auto r3 = link_match(ann, ev(schema_, {2, 0, 0, 0}), init);
  EXPECT_TRUE(yes_set(r3.mask).empty());
}

TEST_F(LinkMatchTest, InitializationMaskBlocksNonDescendantLinks) {
  // Link 1 has a matching subscriber, but the spanning tree says nothing
  // downstream is reachable through it (No in the initialization mask).
  add({0, -1, -1, -1}, 0);
  add({0, -1, -1, -1}, 1);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  auto init = TritVector::from_string("MNMM");
  const auto r = link_match(ann, ev(schema_, {0, 0, 0, 0}), init);
  EXPECT_EQ(yes_set(r.mask), (std::set<int>{0}));
  EXPECT_EQ(r.mask.at(1), Trit::No);
}

TEST_F(LinkMatchTest, AllNoMaskShortCircuits) {
  add({-1, -1, -1, -1}, 0);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  const auto r = link_match(ann, ev(schema_, {0, 0, 0, 0}), TritVector(kLinks, Trit::No));
  EXPECT_EQ(r.steps, 0u);
  EXPECT_TRUE(yes_set(r.mask).empty());
}

TEST_F(LinkMatchTest, RootRefinementCanEndTheSearch) {
  // Match-all subscriptions on every link: the root annotation is all Yes,
  // so the search terminates after one visit (step 2 of the algorithm).
  for (int l = 0; l < static_cast<int>(kLinks); ++l) add({-1, -1, -1, -1}, l);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  const auto r = link_match(ann, ev(schema_, {0, 0, 0, 0}), TritVector(kLinks, Trit::Maybe));
  EXPECT_EQ(yes_set(r.mask), (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.steps, 1u);
}

TEST_F(LinkMatchTest, MaskWidthMismatchThrows) {
  add({0, -1, -1, -1}, 0);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  EXPECT_THROW(link_match(ann, ev(schema_, {0, 0, 0, 0}), TritVector(2, Trit::Maybe)),
               std::invalid_argument);
}

TEST_F(LinkMatchTest, StaleAnnotationThrows) {
  add({0, -1, -1, -1}, 0);
  AnnotatedPst ann(tree_, kLinks, link_fn());
  add({1, -1, -1, -1}, 1);  // tree mutated, annotation not updated
  EXPECT_THROW(link_match(ann, ev(schema_, {0, 0, 0, 0}), TritVector(kLinks, Trit::Maybe)),
               std::logic_error);
}

TEST_F(LinkMatchTest, PartialMatchingCostsLessThanFullMatch) {
  // Link matching only needs to refine kLinks trits; on a broker with few
  // links and a selective workload it visits fewer nodes than enumerating
  // every matching subscription.
  Rng rng(44);
  const auto schema = make_synthetic_schema(10, 5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  Pst tree(schema, identity_order(schema));
  std::unordered_map<SubscriptionId, LinkIndex> links;
  for (std::int64_t i = 0; i < 3000; ++i) {
    links[SubscriptionId{i}] = LinkIndex{static_cast<int>(rng.below(3))};
    tree.add(SubscriptionId{i}, gen.generate(rng));
  }
  AnnotatedPst ann(tree, 3, [&](SubscriptionId id) { return links.at(id); });

  EventGenerator events(schema);
  std::uint64_t link_steps = 0;
  MatchStats full_stats;
  std::vector<SubscriptionId> scratch;
  for (int i = 0; i < 100; ++i) {
    const Event e = events.generate(rng);
    link_steps += link_match(ann, e, TritVector(3, Trit::Maybe)).steps;
    scratch.clear();
    tree.match(e, scratch, &full_stats);
  }
  EXPECT_LT(link_steps, full_stats.nodes_visited);
}

TEST_F(LinkMatchTest, DelayedBranchingSavesSteps) {
  // A hot `*` subtree plus selective value branches: searching value
  // branches first lets the mask resolve before the star subtree is
  // explored.
  Rng rng(91);
  const auto schema = make_synthetic_schema(8, 4);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.7, 0.9, 1.0});

  Pst::Options delayed;
  Pst::Options eager;
  eager.delayed_star = false;
  Pst tree_delayed(schema, identity_order(schema), delayed);
  Pst tree_eager(schema, identity_order(schema), eager);
  std::unordered_map<SubscriptionId, LinkIndex> links;
  for (std::int64_t i = 0; i < 2000; ++i) {
    const auto s = gen.generate(rng);
    links[SubscriptionId{i}] = LinkIndex{static_cast<int>(rng.below(2))};
    tree_delayed.add(SubscriptionId{i}, s);
    tree_eager.add(SubscriptionId{i}, s);
  }
  const auto link_fn = [&](SubscriptionId id) { return links.at(id); };
  AnnotatedPst ann_delayed(tree_delayed, 2, link_fn);
  AnnotatedPst ann_eager(tree_eager, 2, link_fn);

  EventGenerator events(schema);
  std::uint64_t steps_delayed = 0, steps_eager = 0;
  for (int i = 0; i < 200; ++i) {
    const Event e = events.generate(rng);
    const auto rd = link_match(ann_delayed, e, TritVector(2, Trit::Maybe));
    const auto re = link_match(ann_eager, e, TritVector(2, Trit::Maybe));
    EXPECT_EQ(rd.mask, re.mask);  // same decision either way
    steps_delayed += rd.steps;
    steps_eager += re.steps;
  }
  EXPECT_LE(steps_delayed, steps_eager);
}

TEST_F(LinkMatchTest, PropertyYesLinksEqualMatchingSubscriberLinks) {
  Rng rng(7);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.85, 0.9, 1.0});
  for (int i = 0; i < 600; ++i) {
    const auto s = gen.generate(rng);
    const SubscriptionId id{next_id_++};
    const int link = static_cast<int>(rng.below(kLinks));
    links_[id] = LinkIndex{link};
    tree_.add(id, s);
    subs_.emplace_back(s, LinkIndex{link});
  }
  AnnotatedPst ann(tree_, kLinks, link_fn());
  EventGenerator events(schema_);
  const TritVector init(kLinks, Trit::Maybe);
  for (int i = 0; i < 300; ++i) {
    const Event e = events.generate(rng);
    const auto r = link_match(ann, e, init);
    EXPECT_FALSE(r.mask.has_maybe());
    EXPECT_EQ(yes_set(r.mask), expected_links(e)) << "event " << e.to_text();
  }
}

}  // namespace
}  // namespace gryphon
