// Differential tests for the compiled flat PST kernel: under randomized
// subscribe/unsubscribe churn, the compiled representation must produce
// exactly the match sets of the mutable Pst (and of brute-force predicate
// evaluation — the oracle idiom of test_concurrent_matching.cpp), and
// compiled_dispatch must produce bit-identical link-matching decisions to
// the psg_dispatch reference. Plus direct coverage of the representational
// edges: string interning, the -0.0/+0.0 double key, and the precompiled
// eq_children_cover_domain flag.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "matching/compiled_pst.h"
#include "matching/pst.h"
#include "matching/pst_matcher.h"
#include "routing/compiled_annotation.h"
#include "routing/psg_annotation.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

std::vector<SubscriptionId> sorted(std::vector<SubscriptionId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// A mixed schema: finite-domain ints (equality/range/star branches) plus a
// string attribute (interning) — richer than the synthetic generator covers.
SchemaPtr mixed_schema() {
  std::vector<Attribute> attrs;
  for (int i = 0; i < 3; ++i) {
    attrs.push_back({"i" + std::to_string(i), AttributeType::kInt,
                     {Value(0), Value(1), Value(2), Value(3)}});
  }
  attrs.push_back({"s", AttributeType::kString, {}});
  return make_schema("mixed", std::move(attrs));
}

const std::vector<std::string>& string_pool() {
  static const std::vector<std::string> pool{"", "alpha", "alp", "beta", "Ωmega"};
  return pool;
}

Subscription random_subscription(const SchemaPtr& schema, Rng& rng) {
  std::vector<AttributeTest> tests;
  for (std::size_t a = 0; a < schema->attribute_count(); ++a) {
    const std::uint64_t roll = rng.below(10);
    if (roll < 3) {
      tests.push_back(AttributeTest::dont_care());
      continue;
    }
    if (schema->attribute(a).type == AttributeType::kString) {
      tests.push_back(AttributeTest::equals(
          Value(string_pool()[rng.below(string_pool().size())])));
      continue;
    }
    const auto v = static_cast<int>(rng.below(4));
    if (roll < 8) {
      tests.push_back(AttributeTest::equals(Value(v)));
    } else if (roll == 8) {
      tests.push_back(AttributeTest::less_than(Value(v), /*inclusive=*/true));
    } else {
      tests.push_back(AttributeTest::not_equals(Value(v)));
    }
  }
  return Subscription(schema, std::move(tests));
}

Event random_event(const SchemaPtr& schema, Rng& rng) {
  std::vector<Value> values;
  for (std::size_t a = 0; a < schema->attribute_count(); ++a) {
    if (schema->attribute(a).type == AttributeType::kString) {
      // 1-in-4 events carry a string no subscription ever tests for, so the
      // kUnknownKey path is exercised continuously.
      values.emplace_back(rng.below(4) == 0 ? std::string("unknown-" +
                                                          std::to_string(rng.below(3)))
                                            : string_pool()[rng.below(string_pool().size())]);
    } else {
      values.emplace_back(static_cast<int>(rng.below(4)));
    }
  }
  return Event(schema, std::move(values));
}

class CompiledPstChurn : public ::testing::TestWithParam<bool> {};

TEST_P(CompiledPstChurn, MatchSetsIdenticalToMutableTreeAndOracle) {
  const SchemaPtr schema = mixed_schema();
  const Pst::Options options{.trivial_test_elimination = true, .delayed_star = GetParam()};
  Pst tree(schema, {0, 1, 2, 3}, options);
  std::map<SubscriptionId, Subscription> live;
  Rng rng(411);
  MatchScratch scratch;
  std::int64_t next_id = 0;

  for (int round = 0; round < 25; ++round) {
    for (std::uint64_t i = 0, n = 4 + rng.below(20); i < n; ++i) {
      const SubscriptionId id{next_id++};
      live.emplace(id, random_subscription(schema, rng));
      tree.add(id, live.at(id));
    }
    while (!live.empty() && rng.below(3) != 0) {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      ASSERT_TRUE(tree.remove(it->first, it->second).has_value());
      live.erase(it);
    }

    const FrozenPsg frozen(tree);
    const CompiledPst compiled(frozen);
    for (int probe = 0; probe < 40; ++probe) {
      const Event e = random_event(schema, rng);
      std::vector<SubscriptionId> from_tree;
      tree.match(e, from_tree);
      std::vector<SubscriptionId> from_compiled;
      compiled.match(e, from_compiled, scratch);
      std::vector<SubscriptionId> from_oracle;
      for (const auto& [id, sub] : live) {
        if (sub.matches(e)) from_oracle.push_back(id);
      }
      ASSERT_EQ(sorted(from_compiled), sorted(from_tree));
      ASSERT_EQ(sorted(from_compiled), from_oracle);
    }
  }
}

TEST_P(CompiledPstChurn, DispatchDecisionsIdenticalToPsgDispatch) {
  const SchemaPtr schema = mixed_schema();
  const Pst::Options options{.trivial_test_elimination = true, .delayed_star = GetParam()};
  Pst tree(schema, {0, 1, 2, 3}, options);
  std::map<SubscriptionId, Subscription> live;
  Rng rng(2203);
  MatchScratch ref_scratch;
  MatchScratch compiled_scratch;
  std::int64_t next_id = 0;

  // 4 links, link 3 local. Two spanning-tree groups that disagree on
  // remote link assignment but (as BrokerCore guarantees) agree on which
  // subscriptions are local.
  constexpr std::size_t kLinks = 4;
  const LinkIndex local{3};
  const auto owner_of = [](SubscriptionId id) {
    return static_cast<LinkIndex::rep_type>(id.value % kLinks);
  };
  const std::vector<SubscriptionLinkFn> group_fns{
      [&](SubscriptionId id) { return LinkIndex{owner_of(id)}; },
      [&](SubscriptionId id) {
        const auto o = owner_of(id);
        return LinkIndex{o == local.value ? o : static_cast<LinkIndex::rep_type>((o + 1) % 3)};
      }};

  for (int round = 0; round < 20; ++round) {
    for (std::uint64_t i = 0, n = 4 + rng.below(16); i < n; ++i) {
      const SubscriptionId id{next_id++};
      live.emplace(id, random_subscription(schema, rng));
      tree.add(id, live.at(id));
    }
    while (!live.empty() && rng.below(3) != 0) {
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(live.size())));
      ASSERT_TRUE(tree.remove(it->first, it->second).has_value());
      live.erase(it);
    }

    const FrozenPsg frozen(tree);
    const CompiledPst compiled(frozen);
    const CompiledAnnotation compiled_ann(
        compiled, kLinks, std::span<const SubscriptionLinkFn>(group_fns), local);
    std::vector<AnnotatedPsg> reference_ann;
    for (const auto& fn : group_fns) reference_ann.emplace_back(frozen, kLinks, fn, local);

    for (int probe = 0; probe < 30; ++probe) {
      const Event e = random_event(schema, rng);
      TritVector init(kLinks, Trit::No);
      for (std::size_t l = 0; l < kLinks; ++l) {
        init.set(l, static_cast<Trit>(rng.below(3)));
      }
      for (std::size_t g = 0; g < group_fns.size(); ++g) {
        std::vector<SubscriptionId> ref_local;
        const PsgDispatchResult expected =
            psg_dispatch(reference_ann[g], e, init, ref_scratch, &ref_local);
        std::vector<SubscriptionId> got_local;
        const CompiledDispatchResult got =
            compiled_dispatch(compiled_ann, g, e, init, compiled_scratch, &got_local);
        ASSERT_TRUE(got.mask.equals(expected.mask.span()))
            << "mask " << got.mask.to_string() << " != " << expected.mask.to_string();
        ASSERT_EQ(got.steps, expected.steps);
        ASSERT_EQ(sorted(got_local), sorted(ref_local));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StarOrders, CompiledPstChurn, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "delayed_star" : "eager_star";
                         });

TEST(CompiledPst, MatcherCompiledKernelAgreesAcrossHysteresisAndEpochs) {
  // PstMatcher-level differential with factoring: the compiled matcher must
  // agree with a mutable-kernel twin through warm-up (the hysteresis
  // window), after compilation kicks in, and after mutations invalidate
  // compiled entries.
  const auto schema = make_synthetic_schema(6, 4);
  PstMatcherOptions compiled_opts;
  compiled_opts.factoring_levels = 2;
  PstMatcherOptions mutable_opts = compiled_opts;
  mutable_opts.compiled_kernel = false;
  PstMatcher compiled(schema, compiled_opts);
  PstMatcher plain(schema, mutable_opts);

  Rng rng(909);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  EventGenerator events(schema);
  std::int64_t next_id = 0;
  std::vector<SubscriptionId> ids;

  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 40; ++i) {
      const SubscriptionId id{next_id++};
      const Subscription sub = gen.generate(rng);
      compiled.add(id, sub);
      plain.add(id, sub);
      ids.push_back(id);
    }
    for (int i = 0; i < 10 && !ids.empty(); ++i) {
      const std::size_t pick = rng.below(ids.size());
      const SubscriptionId id = ids[pick];
      ids[pick] = ids.back();
      ids.pop_back();
      ASSERT_TRUE(compiled.remove(id));
      ASSERT_TRUE(plain.remove(id));
    }
    // More probes than kCompileThreshold so per-bucket compilation
    // triggers mid-loop: early probes run the mutable walk, later ones the
    // kernel, and all must agree.
    for (unsigned probe = 0; probe < 3 * PstMatcher::kCompileThreshold; ++probe) {
      const Event e = events.generate(rng);
      std::vector<SubscriptionId> a;
      compiled.match_into(e, a);
      std::vector<SubscriptionId> b;
      plain.match_into(e, b);
      ASSERT_EQ(sorted(a), sorted(b));
    }
  }
}

TEST(CompiledPst, StringInterningEdgeCases) {
  std::vector<Attribute> attrs{{"s", AttributeType::kString, {}}};
  const SchemaPtr schema = make_schema("strings", std::move(attrs));
  Pst tree(schema, {0});
  tree.add(SubscriptionId{1}, Subscription(schema, {AttributeTest::equals(Value(""))}));
  tree.add(SubscriptionId{2}, Subscription(schema, {AttributeTest::equals(Value("alpha"))}));
  tree.add(SubscriptionId{3}, Subscription(schema, {AttributeTest::equals(Value("alp"))}));
  tree.add(SubscriptionId{4}, Subscription(schema, {AttributeTest::dont_care()}));

  const CompiledPst compiled{FrozenPsg(tree)};
  // Distinct operands intern distinctly; the empty string is a real key.
  EXPECT_EQ(compiled.string_pool_size(), 3u);
  EXPECT_NE(compiled.key_of(Value("")), CompiledPst::kUnknownKey);
  EXPECT_NE(compiled.key_of(Value("alpha")), compiled.key_of(Value("alp")));
  // A string no subscription mentions resolves to the unmatchable key.
  EXPECT_EQ(compiled.key_of(Value("alphabet")), CompiledPst::kUnknownKey);

  MatchScratch scratch;
  const auto match = [&](const char* s) {
    std::vector<SubscriptionId> out;
    compiled.match(Event(schema, {Value(s)}), out, scratch);
    return sorted(out);
  };
  EXPECT_EQ(match(""), (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{4}}));
  EXPECT_EQ(match("alpha"), (std::vector<SubscriptionId>{SubscriptionId{2}, SubscriptionId{4}}));
  EXPECT_EQ(match("alp"), (std::vector<SubscriptionId>{SubscriptionId{3}, SubscriptionId{4}}));
  // Unknown event string: only the star path may match.
  EXPECT_EQ(match("alphabet"), (std::vector<SubscriptionId>{SubscriptionId{4}}));
}

TEST(CompiledPst, DoubleKeysNormalizeNegativeZeroAndPreserveOrder) {
  std::vector<Attribute> attrs{{"d", AttributeType::kDouble, {}}};
  const SchemaPtr schema = make_schema("doubles", std::move(attrs));
  Pst tree(schema, {0});
  tree.add(SubscriptionId{1}, Subscription(schema, {AttributeTest::equals(Value(0.0))}));
  tree.add(SubscriptionId{2}, Subscription(schema, {AttributeTest::equals(Value(-1.5))}));
  tree.add(SubscriptionId{3}, Subscription(schema, {AttributeTest::equals(Value(2.5))}));

  const CompiledPst compiled{FrozenPsg(tree)};
  // Value treats -0.0 == 0.0; the bit-level key must agree.
  EXPECT_EQ(compiled.key_of(Value(-0.0)), compiled.key_of(Value(0.0)));
  // The encoding preserves the numeric order.
  EXPECT_LT(compiled.key_of(Value(-1.5)), compiled.key_of(Value(0.0)));
  EXPECT_LT(compiled.key_of(Value(0.0)), compiled.key_of(Value(2.5)));

  MatchScratch scratch;
  std::vector<SubscriptionId> out;
  compiled.match(Event(schema, {Value(-0.0)}), out, scratch);
  EXPECT_EQ(out, std::vector<SubscriptionId>{SubscriptionId{1}});
}

TEST(CompiledPst, CoversDomainFlagMatchesFrozenGraph) {
  const auto schema = make_synthetic_schema(2, 3);  // domains {0,1,2}
  Pst full(schema, {0, 1});
  Pst partial(schema, {0, 1});
  std::int64_t id = 0;
  for (int v = 0; v < 3; ++v) {
    const Subscription sub(schema,
                           {AttributeTest::equals(Value(v)), AttributeTest::dont_care()});
    full.add(SubscriptionId{id++}, sub);
    if (v < 2) partial.add(SubscriptionId{id++}, sub);
  }

  const CompiledPst covered{FrozenPsg(full)};
  EXPECT_TRUE(covered.covers_domain(covered.root()));
  const CompiledPst uncovered{FrozenPsg(partial)};
  EXPECT_FALSE(uncovered.covers_domain(uncovered.root()));

  // And in the general randomized case, every compiled node carries exactly
  // the flag of its frozen source node (the per-node flag count and the
  // per-level distribution must agree; node ids differ between the two
  // representations, so compare the multiset of (level, flag) pairs).
  Rng rng(5150);
  const SchemaPtr mixed = mixed_schema();
  Pst tree(mixed, {0, 1, 2, 3});
  for (std::int64_t i = 0; i < 120; ++i) tree.add(SubscriptionId{i}, random_subscription(mixed, rng));
  const FrozenPsg frozen(tree);
  const CompiledPst compiled(frozen);
  ASSERT_EQ(compiled.node_count(), frozen.node_count());
  std::vector<std::pair<int, bool>> expected;
  for (FrozenPsg::NodeId n = 0; n < static_cast<FrozenPsg::NodeId>(frozen.node_count()); ++n) {
    expected.emplace_back(frozen.level(n), frozen.eq_children_cover_domain(n));
  }
  std::vector<std::pair<int, bool>> got;
  for (std::size_t n = 0; n < compiled.node_count(); ++n) {
    const auto id32 = static_cast<CompiledPst::NodeId>(n);
    got.emplace_back(compiled.level(id32), compiled.covers_domain(id32));
  }
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(CompiledPst, BottomUpOrderVisitsChildrenFirst) {
  Rng rng(77);
  const SchemaPtr schema = mixed_schema();
  Pst tree(schema, {0, 1, 2, 3});
  for (std::int64_t i = 0; i < 80; ++i) {
    tree.add(SubscriptionId{i}, random_subscription(schema, rng));
  }
  const CompiledPst compiled{FrozenPsg(tree)};
  std::vector<char> seen(compiled.node_count(), 0);
  std::size_t visited = 0;
  for (const CompiledPst::NodeId n : compiled.bottom_up_order()) {
    if (!compiled.is_leaf(n)) {
      for (const CompiledPst::NodeId child : compiled.eq_targets(n)) ASSERT_TRUE(seen[child]);
      for (const CompiledPst::NodeId child : compiled.other_targets(n)) ASSERT_TRUE(seen[child]);
      if (compiled.star_child(n) != CompiledPst::kNoNode) {
        ASSERT_TRUE(seen[compiled.star_child(n)]);
      }
    }
    seen[static_cast<std::size_t>(n)] = 1;
    ++visited;
  }
  EXPECT_EQ(visited, compiled.node_count());
  EXPECT_TRUE(seen[static_cast<std::size_t>(compiled.root())]);
}

}  // namespace
}  // namespace gryphon
