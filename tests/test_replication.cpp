// Broker state replication (the Clone pattern; docs/fault-tolerance.md
// § Replication): a hot standby shadows its primary through a keyed,
// sequence-numbered update stream with full-snapshot re-baselining, and on
// promotion assumes the primary's spanning-tree role and identity — link
// peers resume their sessions across the failover gap and clients keep
// their redelivery cursors, with any possible loss reported as an explicit
// truncation bound instead of passing silently.
#include "broker/replication.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/event_log.h"
#include "broker/inproc_transport.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

// --- Codec layer ----------------------------------------------------------

TEST(ReplicationCodec, UpdateRoundTripsEveryKind) {
  using K = replication::UpdateKind;
  std::vector<replication::Update> updates;
  updates.push_back({.kind = K::kSubAdd,
                     .id = SubscriptionId{(7LL << 40) | 3},
                     .owner = BrokerId{7},
                     .client = "alice",
                     .space = SpaceId{2},
                     .payload = {1, 2, 3}});
  updates.push_back({.kind = K::kSubRemove, .id = SubscriptionId{9}});
  updates.push_back({.kind = K::kTombstone, .id = SubscriptionId{42}});
  updates.push_back({.kind = K::kClientDeliver,
                     .client = "bob",
                     .space = SpaceId{1},
                     .seq = 17,
                     .payload = {9, 9}});
  updates.push_back({.kind = K::kClientAck, .client = "bob", .seq = 17});
  updates.push_back({.kind = K::kClientTruncate,
                     .client = "bob",
                     .seq = 30,
                     .truncated_through = 30});
  updates.push_back({.kind = K::kLinkForward,
                     .peer = BrokerId{2},
                     .origin = BrokerId{5},
                     .space = SpaceId{0},
                     .seq = 101,
                     .payload = {4, 5, 6, 7}});
  updates.push_back({.kind = K::kLinkAck, .peer = BrokerId{2}, .seq = 101});
  updates.push_back({.kind = K::kLinkTruncate,
                     .peer = BrokerId{2},
                     .seq = 120,
                     .truncated_through = 120});
  updates.push_back(
      {.kind = K::kLinkInSeq, .peer = BrokerId{3}, .seq = 55, .epoch = 999});
  updates.push_back({.kind = K::kLinkDead, .peer = BrokerId{3}, .dead = true});
  updates.push_back({.kind = K::kLinkDead, .peer = BrokerId{3}, .dead = false});

  for (const replication::Update& in : updates) {
    const replication::Update out =
        replication::decode_update(replication::encode_update(in));
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.owner, in.owner);
    EXPECT_EQ(out.peer, in.peer);
    EXPECT_EQ(out.origin, in.origin);
    EXPECT_EQ(out.client, in.client);
    EXPECT_EQ(out.space, in.space);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.epoch, in.epoch);
    EXPECT_EQ(out.truncated_through, in.truncated_through);
    EXPECT_EQ(out.dead, in.dead);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(ReplicationCodec, UnknownUpdateKindThrows) {
  std::vector<std::uint8_t> buffer = {0, 1, 2, 3};
  EXPECT_THROW((void)replication::decode_update(buffer), CodecError);
  buffer[0] = 200;
  EXPECT_THROW((void)replication::decode_update(buffer), CodecError);
}

TEST(ReplicationCodec, SnapshotRoundTrips) {
  replication::SnapshotImage image;
  image.session_epoch = 0xfeedULL;
  image.next_sub_counter = 77;
  image.subscriptions.push_back(
      {SubscriptionId{11}, BrokerId{0}, SpaceId{0}, "alice", {1, 2}});
  image.subscriptions.push_back(
      {SubscriptionId{12}, BrokerId{1}, SpaceId{0}, "", {3}});
  image.tombstones = {SubscriptionId{5}, SubscriptionId{6}};
  replication::LinkImage link;
  link.peer = BrokerId{1};
  link.dead = false;
  link.in_epoch = 31337;
  link.in_seq = 4;
  link.out_log.next_seq = 9;
  link.out_log.acked = 6;
  link.out_log.truncated_through = 2;
  EventLog::Entry entry;
  entry.seq = 7;
  entry.space = SpaceId{0};
  entry.event = {8, 8, 8};
  entry.origin = BrokerId{0};
  link.out_log.entries.push_back(entry);
  image.links.push_back(link);
  replication::ClientImage client;
  client.name = "alice";
  client.log.next_seq = 3;
  client.log.acked = 1;
  EventLog::Entry deliver;
  deliver.seq = 2;
  deliver.space = SpaceId{0};
  deliver.event = {1};
  client.log.entries.push_back(deliver);
  image.clients.push_back(client);

  const replication::SnapshotImage out =
      replication::decode_snapshot(replication::encode_snapshot(image));
  EXPECT_EQ(out.session_epoch, image.session_epoch);
  EXPECT_EQ(out.next_sub_counter, image.next_sub_counter);
  ASSERT_EQ(out.subscriptions.size(), 2u);
  EXPECT_EQ(out.subscriptions[0].id, SubscriptionId{11});
  EXPECT_EQ(out.subscriptions[0].client, "alice");
  EXPECT_EQ(out.subscriptions[1].client, "");
  EXPECT_EQ(out.tombstones, image.tombstones);
  ASSERT_EQ(out.links.size(), 1u);
  EXPECT_EQ(out.links[0].in_epoch, 31337u);
  EXPECT_EQ(out.links[0].in_seq, 4u);
  EXPECT_EQ(out.links[0].out_log.next_seq, 9u);
  ASSERT_EQ(out.links[0].out_log.entries.size(), 1u);
  EXPECT_EQ(out.links[0].out_log.entries[0].seq, 7u);
  EXPECT_EQ(out.links[0].out_log.entries[0].event,
            (std::vector<std::uint8_t>{8, 8, 8}));
  ASSERT_EQ(out.clients.size(), 1u);
  EXPECT_EQ(out.clients[0].log.acked, 1u);
  ASSERT_EQ(out.clients[0].log.entries.size(), 1u);
  EXPECT_EQ(out.clients[0].log.entries[0].seq, 2u);
}

// --- EventLog replication extensions --------------------------------------

TEST(EventLogReplication, AppendAtMirrorsExplicitNumbering) {
  EventLog log;
  log.append_at(5, SpaceId{0}, {1}, 0);
  log.append_at(6, SpaceId{0}, {2}, 0);
  EXPECT_EQ(log.last_seq(), 6u);
  EXPECT_EQ(log.size(), 2u);
  // Below the ack floor: already retired here, must not resurrect.
  log.acknowledge(6);
  log.append_at(4, SpaceId{0}, {3}, 0);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.last_seq(), 6u);
}

TEST(EventLogReplication, TruncateToDropsPrefixAndAdoptsBound) {
  EventLog log;
  for (int i = 0; i < 5; ++i) {
    log.append(SpaceId{0}, {static_cast<std::uint8_t>(i)}, 0);
  }
  log.truncate_to(3, 3);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.truncated_through(), 3u);
  // A smaller bound never regresses the recorded truncation.
  log.truncate_to(0, 1);
  EXPECT_EQ(log.truncated_through(), 3u);
}

TEST(EventLogReplication, FailoverRebaseSkipsGapAndReportsBound) {
  EventLog log;
  log.append(SpaceId{0}, {1}, 0);
  log.append(SpaceId{0}, {2}, 0);
  log.rebase_for_failover(100);
  // Sequence space skipped; retained entries still replayable; the post-gap
  // last_seq is the honest possible-loss bound.
  EXPECT_EQ(log.last_seq(), 102u);
  EXPECT_EQ(log.truncated_through(), 102u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.append(SpaceId{0}, {3}, 0), 103u);

  EventLog links;
  links.append(SpaceId{0}, {1}, 0);
  links.advance_next_seq(100);
  // Link logs skip without marking loss: retained forwards replay with
  // their original numbers and the receiver crosses the gap via the
  // heartbeat floor rule.
  EXPECT_EQ(links.last_seq(), 101u);
  EXPECT_EQ(links.truncated_through(), 0u);
  EXPECT_EQ(links.append(SpaceId{0}, {2}, 0), 102u);
}

// --- Broker-level replication ---------------------------------------------

constexpr std::uint64_t kPrimaryEpoch = 777;

/// Two-broker line (primary = BrokerId{0}, neighbor = BrokerId{1}) plus a
/// hot standby constructed with the *primary's* id — promotion is identity
/// takeover. The replication link is dialed explicitly (attach_standby) so
/// tests control attach/detach timing; net.drop() is the kill switch.
struct ReplicationBed {
  SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  std::atomic<Ticks> clock{0};
  std::unique_ptr<Broker> primary;   // BrokerId{0}
  std::unique_ptr<Broker> neighbor;  // BrokerId{1}
  std::unique_ptr<Broker> standby;   // BrokerId{0}, Options::standby
  std::vector<std::unique_ptr<Client>> clients;
  ConnId link_conn{kInvalidConn};  // primary side of the 0 -> 1 link
  ConnId repl_conn{kInvalidConn};  // standby side of the replication link

  explicit ReplicationBed(bool arm_primary_log = true,
                          std::size_t repl_window = 4096) {
    Broker::Options popts = base_options();
    popts.session_epoch = kPrimaryEpoch;
    popts.replicate = arm_primary_log;
    popts.repl_log_window = repl_window;
    primary = make_broker("primary0", BrokerId{0}, popts);

    Broker::Options nopts = base_options();
    nopts.session_epoch = 1001;
    neighbor = make_broker("broker1", BrokerId{1}, nopts);

    Broker::Options sopts = base_options();
    sopts.session_epoch = 5555;  // must be replaced by the snapshot's epoch
    sopts.standby = true;
    sopts.failover_seq_gap = 1000;
    standby = make_broker("standby0", BrokerId{0}, sopts);

    link_conn = net.connect("primary0", "broker1");
    primary->attach_broker_link(link_conn, BrokerId{1});
    net.pump();
  }

  Broker::Options base_options() {
    Broker::Options opts;
    opts.link_retransmit_timeout = 50;
    opts.link_heartbeat_interval = 200;
    opts.repl_retransmit_timeout = 50;
    opts.clock = [this] { return clock.load(std::memory_order_relaxed); };
    return opts;
  }

  std::unique_ptr<Broker> make_broker(const std::string& name, BrokerId id,
                                      const Broker::Options& opts) {
    auto* endpoint = net.create_endpoint(name);
    auto broker = std::make_unique<Broker>(
        id, topo, std::vector<SchemaPtr>{schema}, *endpoint, opts);
    endpoint->set_handler(broker.get());
    return broker;
  }

  void attach_standby() {
    repl_conn = net.connect("standby0", "primary0");
    standby->attach_replication_link(repl_conn);
    net.pump();
  }

  Client& add_client(const std::string& name, const std::string& broker_endpoint) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    clients.back()->bind(net.connect(name, broker_endpoint));
    net.pump();
    return *clients.back();
  }

  Event make_event(int tag) {
    return Event(schema, {Value("IBM"), Value(100.0 + tag), Value(tag)});
  }
};

TEST(ReplicationTest, FirstAttachAlwaysSnapshots) {
  // Even with the update log armed from construction, a standby that has
  // never applied anything needs the snapshot: the session epoch and
  // subscription-id counter travel only in snapshots, and promotion must
  // continue the primary's link sessions under the primary's epoch.
  ReplicationBed bed(/*arm_primary_log=*/true);
  bed.attach_standby();
  EXPECT_EQ(bed.standby->role(), Broker::Role::kStandby);
  EXPECT_EQ(bed.primary->stats().repl_snapshots_sent, 1u);
  EXPECT_EQ(bed.standby->stats().repl_snapshots_applied, 1u);
  EXPECT_TRUE(bed.standby->replication_last_activity().has_value());
}

TEST(ReplicationTest, SnapshotCarriesPreAttachState) {
  // Log unarmed: everything mutated before the attach reaches the standby
  // only through the full state image.
  ReplicationBed bed(/*arm_primary_log=*/false);
  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  Client& pub = bed.add_client("pub", "primary0");
  pub.publish(0, bed.make_event(1));
  pub.publish(0, bed.make_event(2));
  bed.net.pump();
  ASSERT_EQ(sub.take_deliveries().size(), 2u);

  bed.attach_standby();

  EXPECT_EQ(bed.primary->stats().repl_snapshots_sent, 1u);
  EXPECT_EQ(bed.standby->stats().repl_snapshots_applied, 1u);
  // The image carried the subscription registry (local + replicas).
  EXPECT_EQ(bed.standby->subscription_count(), bed.primary->subscription_count());
}

TEST(ReplicationTest, UpdatesStreamToAttachedStandby) {
  ReplicationBed bed;
  bed.attach_standby();
  const auto applied_at_attach = bed.standby->replication_applied_seq();

  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  Client& pub = bed.add_client("pub", "primary0");
  pub.publish(0, bed.make_event(1));
  bed.net.pump();

  // Subscribe + deliver + the client's auto-ack all streamed as updates and
  // were applied strictly in order.
  EXPECT_GE(bed.standby->replication_applied_seq(), applied_at_attach + 3);
  EXPECT_EQ(bed.primary->stats().repl_updates_sent,
            bed.standby->stats().repl_updates_applied);
  EXPECT_EQ(bed.standby->subscription_count(), bed.primary->subscription_count());
  // Only the mandatory first-attach snapshot; updates carried the rest.
  EXPECT_EQ(bed.primary->stats().repl_snapshots_sent, 1u);
}

TEST(ReplicationTest, ReattachResumesFromAppliedCursor) {
  ReplicationBed bed;
  bed.attach_standby();
  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  bed.net.pump();
  const auto applied_before = bed.standby->replication_applied_seq();
  ASSERT_GT(applied_before, 0u);

  // Drop the replication link; the primary keeps logging mutations.
  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  Client& pub = bed.add_client("pub", "primary0");
  pub.publish(0, bed.make_event(1));
  bed.net.pump();
  EXPECT_EQ(bed.standby->replication_applied_seq(), applied_before);

  // Reattach: the hello reports the applied cursor and only the missing
  // suffix streams — no second snapshot.
  bed.attach_standby();
  EXPECT_GT(bed.standby->replication_applied_seq(), applied_before);
  EXPECT_EQ(bed.primary->stats().repl_snapshots_sent, 1u);
}

TEST(ReplicationTest, LaggedReattachFallsBackToSnapshot) {
  // Window of 4: the detached standby falls further behind than the primary
  // retains, so the reattach must re-baseline instead of replaying.
  ReplicationBed bed(/*arm_primary_log=*/true, /*repl_window=*/4);
  bed.attach_standby();
  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  bed.net.pump();
  ASSERT_GT(bed.standby->replication_applied_seq(), 0u);
  ASSERT_EQ(bed.primary->stats().repl_snapshots_sent, 1u);

  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  Client& pub = bed.add_client("pub", "primary0");
  for (int i = 0; i < 8; ++i) pub.publish(0, bed.make_event(i + 1));
  bed.net.pump();

  bed.attach_standby();
  EXPECT_EQ(bed.primary->stats().repl_snapshots_sent, 2u);
  EXPECT_EQ(bed.standby->subscription_count(), bed.primary->subscription_count());
}

TEST(ReplicationTest, StandbyRefusesClientTraffic) {
  ReplicationBed bed;
  bed.attach_standby();
  const auto rejected_before = bed.standby->stats().frames_rejected;
  Client& probe = bed.add_client("probe", "standby0");
  bed.net.pump();
  EXPECT_GT(bed.standby->stats().frames_rejected, rejected_before);
  EXPECT_FALSE(probe.connected());  // the standby dropped the connection
}

TEST(ReplicationTest, PromotionServesClientsWithHonestTruncationBound) {
  ReplicationBed bed;
  bed.attach_standby();
  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  Client& pub = bed.add_client("pub", "primary0");
  for (int i = 1; i <= 3; ++i) pub.publish(0, bed.make_event(i));
  bed.net.pump();
  ASSERT_EQ(sub.take_deliveries().size(), 3u);
  const std::uint64_t seen = sub.last_seq();

  // Primary dies (replication link severed); the standby takes over.
  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  bed.standby->promote();
  EXPECT_EQ(bed.standby->role(), Broker::Role::kPrimary);
  EXPECT_EQ(bed.standby->stats().promotions, 1u);
  EXPECT_GT(bed.standby->stats().failover_seq_rebases, 0u);
  // Promotion is idempotent.
  bed.standby->promote();
  EXPECT_EQ(bed.standby->stats().promotions, 1u);

  // The subscriber fails over to the promoted standby with its cursor.
  sub.bind(bed.net.connect("sub", "standby0"));
  bed.net.pump();
  // Everything acknowledged was retired; nothing replays as a duplicate.
  EXPECT_TRUE(sub.take_deliveries().empty());
  // The failover gap is reported as an honest possible-loss bound: it
  // covers anything the dead primary might have delivered unreplicated.
  EXPECT_GT(sub.replay_truncated_through(), seen);

  // Fresh publishes flow through the promoted identity, numbered past the
  // gap so they can never collide with a dead-primary assignment.
  Client& pub2 = bed.add_client("pub2", "standby0");
  pub2.publish(0, bed.make_event(99));
  bed.net.pump();
  const auto deliveries = sub.take_deliveries();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(static_cast<int>(deliveries[0].event.value(2).as_int()), 99);
  EXPECT_GT(deliveries[0].seq, sub.replay_truncated_through());
}

TEST(ReplicationTest, PromotedStandbyRetainsUnackedRedelivery) {
  // Deliveries the subscriber never acknowledged survive the failover: the
  // standby holds them in the replicated log and replays them on re-hello,
  // below the reported truncation bound but not silently lost.
  ReplicationBed bed;
  bed.attach_standby();
  Client::Options copts;
  copts.auto_ack = false;
  auto* endpoint = bed.net.create_endpoint("sub");
  bed.clients.push_back(std::make_unique<Client>(
      "sub", *endpoint, std::vector<SchemaPtr>{bed.schema}, copts));
  Client& sub = *bed.clients.back();
  endpoint->set_handler(&sub);
  sub.bind(bed.net.connect("sub", "primary0"));
  bed.net.pump();
  sub.subscribe(0, "volume > 0");
  Client& pub = bed.add_client("pub", "primary0");
  pub.publish(0, bed.make_event(7));
  bed.net.pump();
  ASSERT_EQ(sub.take_deliveries().size(), 1u);  // delivered but never acked

  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  bed.standby->promote();

  // A *fresh* client instance under the same hello name (cursor lost, e.g.
  // the consumer restarted) reconnects: the retained delivery replays from
  // the promoted standby.
  auto* endpoint2 = bed.net.create_endpoint("sub_redial");
  Client resumed("sub", *endpoint2, std::vector<SchemaPtr>{bed.schema});
  endpoint2->set_handler(&resumed);
  resumed.bind(bed.net.connect("sub_redial", "standby0"));
  bed.net.pump();
  const auto replayed = resumed.take_deliveries();
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(static_cast<int>(replayed[0].event.value(2).as_int()), 7);
}

TEST(ReplicationTest, PromotedStandbyResumesLinkSessionAcrossGap) {
  ReplicationBed bed;
  bed.attach_standby();
  // Remote subscriber on the neighbor; publisher on the primary: forwards
  // cross the 0 -> 1 link and the link log replicates as it grows.
  Client& far_sub = bed.add_client("far_sub", "broker1");
  far_sub.subscribe(0, "volume > 0");
  bed.net.pump();
  Client& pub = bed.add_client("pub", "primary0");
  for (int i = 1; i <= 4; ++i) pub.publish(0, bed.make_event(i));
  bed.net.pump();
  ASSERT_EQ(far_sub.take_deliveries().size(), 4u);

  // Primary dies; the neighbor redials the promoted standby, which
  // continues the same link session under the primary's epoch.
  bed.net.drop("primary0", bed.link_conn);
  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  bed.standby->promote();
  const ConnId redial = bed.net.connect("broker1", "standby0");
  bed.neighbor->attach_broker_link(redial, BrokerId{0});
  bed.net.pump();

  // Events published at the promoted standby still reach the neighbor's
  // subscriber — exactly once, numbered past the failover gap the
  // handshake's trailing heartbeat told the neighbor to skip.
  Client& pub2 = bed.add_client("pub2", "standby0");
  pub2.publish(0, bed.make_event(50));
  pub2.publish(0, bed.make_event(51));
  bed.net.pump();
  bed.clock += 300;  // drive retransmit/heartbeat timers, then drain
  bed.standby->tick_links(bed.clock);
  bed.neighbor->tick_links(bed.clock);
  bed.net.pump();

  std::vector<int> tags;
  for (const auto& d : far_sub.take_deliveries()) {
    tags.push_back(static_cast<int>(d.event.value(2).as_int()));
  }
  EXPECT_EQ(tags, (std::vector<int>{50, 51}));
  EXPECT_EQ(bed.neighbor->stats().duplicates_dropped, 0u);
}

}  // namespace
}  // namespace gryphon
