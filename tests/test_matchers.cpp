// Cross-checks the three matcher implementations against each other and
// against brute-force predicate evaluation on randomized workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "matching/gating_matcher.h"
#include "matching/naive_matcher.h"
#include "matching/pst_matcher.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

enum class Kind { kNaive, kGating, kPst, kPstFactored };

std::unique_ptr<Matcher> make_matcher(Kind kind, const SchemaPtr& schema) {
  switch (kind) {
    case Kind::kNaive: return std::make_unique<NaiveMatcher>();
    case Kind::kGating: return std::make_unique<GatingMatcher>(schema);
    case Kind::kPst: return std::make_unique<PstMatcher>(schema);
    case Kind::kPstFactored: {
      PstMatcherOptions options;
      options.factoring_levels = 2;
      return std::make_unique<PstMatcher>(schema, options);
    }
  }
  return nullptr;
}

class MatcherParity : public ::testing::TestWithParam<Kind> {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(6, 4);
};

TEST_P(MatcherParity, AgreesWithBruteForceUnderChurn) {
  Rng rng(2024);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  EventGenerator events(schema_);
  auto matcher = make_matcher(GetParam(), schema_);

  std::vector<std::pair<SubscriptionId, Subscription>> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 400; ++round) {
    if (live.empty() || rng.chance(0.65)) {
      const Subscription s = gen.generate(rng);
      const SubscriptionId id{next_id++};
      matcher->add(id, s);
      live.emplace_back(id, s);
    } else {
      const std::size_t pick = rng.below(live.size());
      EXPECT_TRUE(matcher->remove(live[pick].first));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(matcher->subscription_count(), live.size());

  for (int i = 0; i < 100; ++i) {
    const Event e = events.generate(rng);
    std::vector<SubscriptionId> got = matcher->match(e).ids;
    std::sort(got.begin(), got.end());
    std::vector<SubscriptionId> want;
    for (const auto& [id, s] : live) {
      if (s.matches(e)) want.push_back(id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(MatcherParity, DuplicateAddThrows) {
  auto matcher = make_matcher(GetParam(), schema_);
  const auto sub = Subscription::match_all(schema_);
  matcher->add(SubscriptionId{1}, sub);
  EXPECT_THROW(matcher->add(SubscriptionId{1}, sub), std::invalid_argument);
}

TEST_P(MatcherParity, RemoveUnknownReturnsFalse) {
  auto matcher = make_matcher(GetParam(), schema_);
  EXPECT_FALSE(matcher->remove(SubscriptionId{404}));
}

TEST_P(MatcherParity, RangeSubscriptionsSupported) {
  auto matcher = make_matcher(GetParam(), schema_);
  std::vector<AttributeTest> tests(6);
  tests[1] = AttributeTest::between(Value(1), Value(2));
  tests[4] = AttributeTest::not_equals(Value(0));
  matcher->add(SubscriptionId{7}, Subscription(schema_, tests));

  const Event hit(schema_, {Value(0), Value(2), Value(0), Value(0), Value(3), Value(0)});
  const Event miss(schema_, {Value(0), Value(3), Value(0), Value(0), Value(3), Value(0)});
  EXPECT_EQ(matcher->match(hit).ids, (std::vector<SubscriptionId>{SubscriptionId{7}}));
  EXPECT_TRUE(matcher->match(miss).ids.empty());
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherParity,
                         ::testing::Values(Kind::kNaive, Kind::kGating, Kind::kPst,
                                           Kind::kPstFactored),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kNaive: return "Naive";
                             case Kind::kGating: return "Gating";
                             case Kind::kPst: return "Pst";
                             case Kind::kPstFactored: return "PstFactored";
                           }
                           return "?";
                         });

TEST(PstVsNaiveCost, TreeBeatsScanOnSelectiveWorkloads) {
  const auto schema = make_synthetic_schema(10, 5);
  Rng rng(5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  EventGenerator events(schema);
  NaiveMatcher naive;
  PstMatcher pst(schema);
  for (std::int64_t i = 0; i < 2000; ++i) {
    const auto s = gen.generate(rng);
    naive.add(SubscriptionId{i}, s);
    pst.add(SubscriptionId{i}, s);
  }
  MatchStats naive_stats, pst_stats;
  std::vector<SubscriptionId> out;
  for (int i = 0; i < 50; ++i) {
    const Event e = events.generate(rng);
    out.clear();
    naive.match_into(e, out, &naive_stats);
    out.clear();
    pst.match_into(e, out, &pst_stats);
  }
  // The PST visits far fewer nodes than the scan visits subscriptions.
  EXPECT_LT(pst_stats.nodes_visited * 2, naive_stats.nodes_visited);
}

TEST(GatingMatcher, UsesEqualityIndexWhenAvailable) {
  const auto schema = make_synthetic_schema(4, 4);
  GatingMatcher matcher(schema);
  // 100 subscriptions pinned to a1 values; events probe one value.
  for (std::int64_t i = 0; i < 100; ++i) {
    std::vector<AttributeTest> tests(4);
    tests[0] = AttributeTest::equals(Value(static_cast<int>(i % 4)));
    matcher.add(SubscriptionId{i}, Subscription(schema, tests));
  }
  MatchStats stats;
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(0), Value(0), Value(0), Value(0)}), out, &stats);
  EXPECT_EQ(out.size(), 25u);
  // Only the 25 gated candidates had residuals evaluated.
  EXPECT_EQ(stats.nodes_visited, 25u);
}

TEST(GatingMatcher, MatchAllSubscriptionsAlwaysEvaluated) {
  const auto schema = make_synthetic_schema(3, 3);
  GatingMatcher matcher(schema);
  matcher.add(SubscriptionId{1}, Subscription::match_all(schema));
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(0), Value(1), Value(2)}), out);
  EXPECT_EQ(out, (std::vector<SubscriptionId>{SubscriptionId{1}}));
}

TEST(GatingMatcher, RangeGateFallsBackToScanList) {
  const auto schema = make_synthetic_schema(3, 4);
  GatingMatcher matcher(schema);
  std::vector<AttributeTest> tests(3);
  tests[1] = AttributeTest::greater_than(Value(1));
  matcher.add(SubscriptionId{9}, Subscription(schema, tests));
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(0), Value(2), Value(0)}), out);
  EXPECT_EQ(out, (std::vector<SubscriptionId>{SubscriptionId{9}}));
  out.clear();
  matcher.match_into(Event(schema, {Value(0), Value(1), Value(0)}), out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(matcher.remove(SubscriptionId{9}));
  EXPECT_EQ(matcher.subscription_count(), 0u);
}

}  // namespace
}  // namespace gryphon
