// Covering-aware control plane: differential proof that subscription
// aggregation (matching/covering_index.h) and delta compilation are pure
// control-plane optimizations. A core with covering on must produce
// bit-identical match sets — forwarding decisions, local deliveries, the
// network-wide match_all set — to a core with covering off, for the same
// subscription history, across randomized churn, slice growth, and the
// broker-level reconnect reconciliation path (tombstones + uncovering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/broker_core.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "common/rng.h"
#include "matching/covering_index.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

constexpr SpaceId kSpace0{0};

ControlPlaneOptions covering_off() {
  ControlPlaneOptions options;
  options.covering = false;
  return options;
}

// ---------------------------------------------------------------------------
// test_covers: the per-attribute containment relation.

using T = AttributeTest;

Value iv(std::int64_t v) { return Value(v); }

TEST(TestCovers, TruthTable) {
  // Don't-care (and the unbounded range) cover everything.
  EXPECT_TRUE(CoveringIndex::test_covers(T::dont_care(), T::dont_care()));
  EXPECT_TRUE(CoveringIndex::test_covers(T::dont_care(), T::equals(iv(1))));
  EXPECT_TRUE(CoveringIndex::test_covers(T::dont_care(), T::between(iv(1), iv(5))));
  T unbounded;
  unbounded.kind = TestKind::kRange;  // no bounds: accepts every value
  EXPECT_TRUE(CoveringIndex::test_covers(unbounded, T::dont_care()));
  // Nothing narrower covers don't-care.
  EXPECT_FALSE(CoveringIndex::test_covers(T::equals(iv(1)), T::dont_care()));
  EXPECT_FALSE(CoveringIndex::test_covers(T::between(iv(1), iv(5)), T::dont_care()));
  EXPECT_FALSE(CoveringIndex::test_covers(T::not_equals(iv(1)), T::dont_care()));

  // Equality on the right: containment is acceptance of the one value.
  EXPECT_TRUE(CoveringIndex::test_covers(T::equals(iv(1)), T::equals(iv(1))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::equals(iv(1)), T::equals(iv(2))));
  EXPECT_TRUE(CoveringIndex::test_covers(T::not_equals(iv(2)), T::equals(iv(1))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::not_equals(iv(1)), T::equals(iv(1))));
  EXPECT_TRUE(CoveringIndex::test_covers(T::between(iv(1), iv(5)), T::equals(iv(3))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::between(iv(2), iv(5)), T::equals(iv(1))));

  // Not-equals on the right: only the same co-set (or accept-all) works.
  EXPECT_TRUE(CoveringIndex::test_covers(T::not_equals(iv(1)), T::not_equals(iv(1))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::not_equals(iv(2)), T::not_equals(iv(1))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::between(iv(0), iv(9)), T::not_equals(iv(1))));

  // Range in range: per-side bound containment, inclusivity included.
  EXPECT_TRUE(CoveringIndex::test_covers(T::between(iv(1), iv(5)), T::between(iv(2), iv(5))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::between(iv(2), iv(5)), T::between(iv(1), iv(5))));
  EXPECT_TRUE(CoveringIndex::test_covers(T::between(iv(1), iv(5), true, true),
                                         T::between(iv(1), iv(5), false, true)));
  EXPECT_FALSE(CoveringIndex::test_covers(T::between(iv(1), iv(5), false, true),
                                          T::between(iv(1), iv(5), true, true)));
  // Half-open ranges (greater_than / less_than are exclusive by default).
  EXPECT_TRUE(CoveringIndex::test_covers(T::greater_than(iv(1)), T::greater_than(iv(2))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::greater_than(iv(2)), T::greater_than(iv(1))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::greater_than(iv(1)), T::less_than(iv(5))));
  EXPECT_TRUE(CoveringIndex::test_covers(T::greater_than(iv(1)), T::between(iv(2), iv(9))));

  // Equality covers exactly the degenerate closed range.
  EXPECT_TRUE(CoveringIndex::test_covers(T::equals(iv(2)), T::between(iv(2), iv(2))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::equals(iv(2)), T::between(iv(2), iv(3))));
  // Not-equals covers a range that misses its hole.
  EXPECT_TRUE(CoveringIndex::test_covers(T::not_equals(iv(1)), T::between(iv(2), iv(5))));
  EXPECT_FALSE(CoveringIndex::test_covers(T::not_equals(iv(3)), T::between(iv(2), iv(5))));
}

/// A random test over the small int domain [0, domain).
T random_test(Rng& rng, std::int64_t domain) {
  const auto value = [&] { return iv(static_cast<std::int64_t>(rng.below(domain))); };
  switch (rng.below(5)) {
    case 0:
      return T::dont_care();
    case 1:
      return T::equals(value());
    case 2:
      return T::not_equals(value());
    case 3: {
      std::int64_t lo = static_cast<std::int64_t>(rng.below(domain));
      std::int64_t hi = static_cast<std::int64_t>(rng.below(domain));
      if (hi < lo) std::swap(lo, hi);
      return T::between(iv(lo), iv(hi), rng.below(2) == 0, rng.below(2) == 0);
    }
    default:
      return rng.below(2) == 0 ? T::greater_than(value(), rng.below(2) == 0)
                               : T::less_than(value(), rng.below(2) == 0);
  }
}

TEST(TestCovers, RandomizedSoundnessAgainstExhaustiveEvaluation) {
  // test_covers(a, b) claims "every value b accepts, a accepts". The domain
  // is small enough to check that claim exhaustively; soundness (no false
  // covers) is what correctness rests on, so it must hold for every pair.
  constexpr std::int64_t kDomain = 6;
  Rng rng(424242);
  int covered_pairs = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const T a = random_test(rng, kDomain);
    const T b = random_test(rng, kDomain);
    if (!CoveringIndex::test_covers(a, b)) continue;
    ++covered_pairs;
    for (std::int64_t v = 0; v < kDomain; ++v) {
      if (b.accepts(iv(v))) {
        EXPECT_TRUE(a.accepts(iv(v)))
            << "unsound cover: value " << v << " accepted by covered but not coverer";
      }
    }
  }
  EXPECT_GT(covered_pairs, 100);  // the trial actually exercised the relation
}

TEST(TestCovers, SubscriptionCoversImpliesMatchContainment) {
  const SchemaPtr schema = make_synthetic_schema(3, 4);
  Rng rng(1337);
  EventGenerator events(schema);
  int covered_pairs = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<T> ta;
    std::vector<T> tb;
    for (int i = 0; i < 3; ++i) {
      ta.push_back(random_test(rng, 4));
      tb.push_back(random_test(rng, 4));
    }
    const Subscription a(schema, ta);
    const Subscription b(schema, tb);
    if (!CoveringIndex::covers(a, b)) continue;
    ++covered_pairs;
    for (int e = 0; e < 20; ++e) {
      const Event event = events.generate(rng);
      if (b.matches(event)) {
        EXPECT_TRUE(a.matches(event)) << "cover misses an event its child matches";
      }
    }
  }
  EXPECT_GT(covered_pairs, 50);
}

// ---------------------------------------------------------------------------
// CoveringIndex mechanics: park, demote, promote.

TEST(CoveringIndexMechanics, ParkDemoteAndPromote) {
  const SchemaPtr schema = make_synthetic_schema(3, 5);
  CoveringIndex index(schema);
  const Subscription broad(schema, {T::equals(iv(0)), T::dont_care(), T::dont_care()});
  const Subscription tight(schema, {T::equals(iv(0)), T::equals(iv(1)), T::dont_care()});
  const Subscription tighter(schema,
                             {T::equals(iv(0)), T::equals(iv(1)), T::equals(iv(2))});

  // Frontier entry, then a covered child parks under it.
  const auto r1 = index.add(SubscriptionId{1}, broad, BrokerId{0});
  EXPECT_FALSE(r1.parked);
  const auto r2 = index.add(SubscriptionId{2}, tight, BrokerId{0});
  EXPECT_TRUE(r2.parked);
  EXPECT_EQ(r2.coverer, SubscriptionId{1});
  EXPECT_EQ(index.frontier_count(), 1u);
  EXPECT_EQ(index.parked_count(), 1u);
  EXPECT_TRUE(index.is_parked(SubscriptionId{2}));

  // Covering never crosses owners: the same predicate from another broker
  // enters the frontier (its forwarding link differs).
  const auto r3 = index.add(SubscriptionId{3}, tight, BrokerId{1});
  EXPECT_FALSE(r3.parked);
  EXPECT_EQ(index.frontier_count(), 2u);

  // Demotion: a broader late arrival pulls the owner's frontier entry in.
  const auto r4 = index.add(SubscriptionId{4}, broad, BrokerId{1});
  EXPECT_FALSE(r4.parked);
  ASSERT_EQ(r4.demoted.size(), 1u);
  EXPECT_EQ(r4.demoted[0], SubscriptionId{3});
  EXPECT_EQ(index.frontier_count(), 2u);
  EXPECT_EQ(index.parked_count(), 2u);

  // Parked children survive their own removal path.
  const auto parked_removal = index.remove(SubscriptionId{3});
  EXPECT_TRUE(parked_removal.known);
  EXPECT_TRUE(parked_removal.was_parked);
  EXPECT_TRUE(parked_removal.promoted.empty());
  EXPECT_EQ(index.parked_count(), 1u);

  // Removing a coverer promotes orphans with no remaining coverer.
  const auto r5 = index.add(SubscriptionId{5}, tighter, BrokerId{0});
  EXPECT_TRUE(r5.parked);
  EXPECT_EQ(r5.coverer, SubscriptionId{1});
  const auto uncover = index.remove(SubscriptionId{1});
  EXPECT_TRUE(uncover.known);
  EXPECT_FALSE(uncover.was_parked);
  // Broadest-first re-homing: `tight` promotes, then re-covers `tighter`.
  ASSERT_EQ(uncover.promoted.size(), 1u);
  EXPECT_EQ(uncover.promoted[0].id, SubscriptionId{2});
  EXPECT_EQ(index.frontier_count(), 2u);  // {2 (promoted), 4}
  EXPECT_EQ(index.parked_count(), 1u);    // 5 re-parked under 2
  EXPECT_TRUE(index.is_parked(SubscriptionId{5}));

  // The published snapshot mirrors the parked set.
  const auto snapshot = index.snapshot();
  EXPECT_EQ(snapshot->parked_count(), 1u);
  const auto children = snapshot->children_of(SubscriptionId{2});
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->size(), 1u);
  EXPECT_EQ((*children)[0].id, SubscriptionId{5});
}

TEST(CoveringIndexMechanics, LocalOwnerBypassesCovering) {
  // Subscriptions owned by the local broker always stay frontier: they
  // never park (local fan-out must come out of the compiled kernels) and
  // never cover (a local coverer would park later local subscriptions).
  // Remote owners aggregate as usual.
  const SchemaPtr schema = make_synthetic_schema(3, 5);
  CoveringIndex index(schema, BrokerId{1});
  const Subscription broad(schema, {T::equals(iv(0)), T::dont_care(), T::dont_care()});
  const Subscription tight(schema, {T::equals(iv(0)), T::equals(iv(1)), T::dont_care()});

  EXPECT_FALSE(index.add(SubscriptionId{1}, broad, BrokerId{1}).parked);
  const auto local_tight = index.add(SubscriptionId{2}, tight, BrokerId{1});
  EXPECT_FALSE(local_tight.parked);
  EXPECT_TRUE(local_tight.demoted.empty());
  EXPECT_EQ(index.frontier_count(), 2u);
  EXPECT_EQ(index.parked_count(), 0u);

  // The same shapes under a remote owner park as before.
  EXPECT_FALSE(index.add(SubscriptionId{3}, broad, BrokerId{0}).parked);
  EXPECT_TRUE(index.add(SubscriptionId{4}, tight, BrokerId{0}).parked);
  EXPECT_EQ(index.parked_count(), 1u);

  // Local frontier entries look up and remove cleanly.
  EXPECT_NE(index.find(SubscriptionId{2}), nullptr);
  EXPECT_TRUE(index.remove(SubscriptionId{2}).known);
  EXPECT_TRUE(index.remove(SubscriptionId{1}).known);
  EXPECT_EQ(index.frontier_count(), 1u);
  EXPECT_EQ(index.parked_count(), 1u);  // the remote pair is untouched
}

// ---------------------------------------------------------------------------
// Differential: covering on vs off must be bit-identical.

/// Compares every decision field whose value covering may not change:
/// forwarding, local delivery, and the delivered id sets. Step counts and
/// local-match order legitimately differ (the covering frontier compiles
/// into differently-shaped kernels; match_all additionally appends parked
/// remote ids by expansion).
void expect_equivalent(const BrokerCore& with, const BrokerCore& without,
                       const std::vector<Event>& pool, int roots) {
  MatchScratch scratch_a;
  MatchScratch scratch_b;
  for (int root = 0; root < roots; ++root) {
    for (const Event& e : pool) {
      const Decision a = with.dispatch(kSpace0, e, BrokerId{root}, scratch_a);
      const Decision b = without.dispatch(kSpace0, e, BrokerId{root}, scratch_b);
      EXPECT_EQ(a.forward, b.forward) << "forwarding differs under covering";
      EXPECT_EQ(a.deliver_locally, b.deliver_locally);
      std::vector<SubscriptionId> la = a.local_matches;
      std::vector<SubscriptionId> lb = b.local_matches;
      std::sort(la.begin(), la.end());
      std::sort(lb.begin(), lb.end());
      EXPECT_EQ(la, lb) << "local match set differs under covering";
    }
  }
  for (const Event& e : pool) {
    std::vector<SubscriptionId> ma = with.match_all(kSpace0, e);
    std::vector<SubscriptionId> mb = without.match_all(kSpace0, e);
    std::sort(ma.begin(), ma.end());
    std::sort(mb.begin(), mb.end());
    EXPECT_EQ(ma, mb) << "match_all set differs under covering";
  }
}

class CoveringDifferentialTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(4, 3);
  BrokerNetwork topo_ = make_line(3, 10, 0, 1);
};

TEST_F(CoveringDifferentialTest, EqualityWorkloadAcrossRandomizedChurn) {
  BrokerCore with(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  BrokerCore without(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, covering_off());

  Rng rng(90210);
  // A heavy-star workload so covering actually bites: most subscriptions
  // test one or two attributes, producing deep cover chains.
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.55, 1.0});
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(events.generate(rng));

  std::vector<SubscriptionId> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 6; ++round) {
    for (int a = 0; a < 60; ++a) {
      const SubscriptionId id{next_id++};
      const Subscription s = gen.generate(rng);
      const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
      with.add_subscription(kSpace0, id, s, owner);
      without.add_subscription(kSpace0, id, s, owner);
      live.push_back(id);
    }
    // Remove a random half — coverers and covered alike, so promotion and
    // re-parking both fire.
    for (int r = 0; r < 30 && !live.empty(); ++r) {
      const std::size_t pick = rng.below(live.size());
      const SubscriptionId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(with.remove_subscription(id));
      ASSERT_TRUE(without.remove_subscription(id));
    }
    expect_equivalent(with, without, pool, 3);
  }

  // The aggregation must have parked something for the diff to mean much,
  // and the live accounting must balance.
  with.control_plane().assert_serialized();
  without.control_plane().assert_serialized();
  EXPECT_GT(with.covered_count(kSpace0), 0u);
  EXPECT_EQ(with.frontier_count(kSpace0) + with.covered_count(kSpace0),
            with.subscription_count(kSpace0));
  EXPECT_EQ(without.covered_count(kSpace0), 0u);
  EXPECT_LT(with.frontier_count(kSpace0), without.frontier_count(kSpace0));
}

TEST_F(CoveringDifferentialTest, RangeAndNotEqualsWorkload) {
  BrokerCore with(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  BrokerCore without(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, covering_off());

  Rng rng(5150);
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(events.generate(rng));

  std::vector<SubscriptionId> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 5; ++round) {
    for (int a = 0; a < 50; ++a) {
      std::vector<T> tests;
      for (int i = 0; i < 4; ++i) tests.push_back(random_test(rng, 3));
      const Subscription s(schema_, tests);
      const SubscriptionId id{next_id++};
      const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
      with.add_subscription(kSpace0, id, s, owner);
      without.add_subscription(kSpace0, id, s, owner);
      live.push_back(id);
    }
    for (int r = 0; r < 25 && !live.empty(); ++r) {
      const std::size_t pick = rng.below(live.size());
      const SubscriptionId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(with.remove_subscription(id));
      ASSERT_TRUE(without.remove_subscription(id));
    }
    expect_equivalent(with, without, pool, 3);
  }
  with.control_plane().assert_serialized();
  EXPECT_GT(with.covered_count(kSpace0), 0u);
}

TEST_F(CoveringDifferentialTest, FactoredShardedDeltaSegmentsAgree) {
  // The full stack at once: factoring + shards + covering + multiple delta
  // segments (tiny target forces slice growth) against the plain core.
  PstMatcherOptions factored;
  factored.factoring_levels = 2;
  ControlPlaneOptions delta;
  delta.delta_segment_target = 16;
  delta.max_delta_segments = 8;
  BrokerCore with(BrokerId{1}, topo_, {schema_}, factored, 4, delta);
  BrokerCore without(BrokerId{1}, topo_, {schema_}, factored, 1, covering_off());

  Rng rng(777);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.7, 1.0});
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(events.generate(rng));

  std::vector<SubscriptionId> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 4; ++round) {
    for (int a = 0; a < 80; ++a) {
      const SubscriptionId id{next_id++};
      const Subscription s = gen.generate(rng);
      const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
      with.add_subscription(kSpace0, id, s, owner);
      without.add_subscription(kSpace0, id, s, owner);
      live.push_back(id);
    }
    for (int r = 0; r < 40 && !live.empty(); ++r) {
      const std::size_t pick = rng.below(live.size());
      const SubscriptionId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ASSERT_TRUE(with.remove_subscription(id));
      ASSERT_TRUE(without.remove_subscription(id));
    }
    expect_equivalent(with, without, pool, 3);
  }

  with.control_plane().assert_serialized();
  EXPECT_GT(with.segment_count(kSpace0), 1u) << "growth never triggered";
  const ControlPlaneStats stats = with.control_plane_stats();
  EXPECT_GT(stats.delta_publishes, 0u);
  EXPECT_GT(stats.segments_reused, 0u);
  EXPECT_GT(stats.covering_only_publishes, 0u);
  EXPECT_EQ(stats.frontier_subscriptions + stats.covered_subscriptions,
            with.subscription_count());
}

TEST_F(CoveringDifferentialTest, DeferredPublicationIsInvisibleUntilPublishSpace) {
  BrokerCore deferred(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  BrokerCore eager(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});

  Rng rng(31);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.7, 1.0});
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(events.generate(rng));

  const std::uint64_t before = deferred.snapshot_version();
  for (std::int64_t i = 0; i < 50; ++i) {
    const Subscription s = gen.generate(rng);
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    deferred.add_subscription(kSpace0, SubscriptionId{i}, s, owner,
                              SnapshotPolicy::kDefer);
    eager.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
  }
  // Nothing published: the data plane still sees the empty space.
  EXPECT_EQ(deferred.snapshot_version(), before);
  for (const Event& e : pool) EXPECT_TRUE(deferred.match_all(kSpace0, e).empty());

  deferred.control_plane().assert_serialized();
  deferred.publish_space(kSpace0);
  EXPECT_GT(deferred.snapshot_version(), before);
  expect_equivalent(deferred, eager, pool, 3);
  // Idempotent when nothing is pending.
  const std::uint64_t published = deferred.snapshot_version();
  deferred.publish_space(kSpace0);
  EXPECT_EQ(deferred.snapshot_version(), published);
}

TEST_F(CoveringDifferentialTest, SelfOwnedSubscriptionsNeverPark) {
  // The dispatch hot path relies on this: local fan-out comes straight out
  // of the compiled kernels, with no parked-child expansion. An all-local
  // population therefore compiles fully — zero covered, zero covering-only
  // publishes — even under a workload dense with containment.
  BrokerCore core(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  Rng rng(2468);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.55, 1.0});
  for (std::int64_t i = 0; i < 200; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{i}, gen.generate(rng), BrokerId{1});
  }
  EXPECT_EQ(core.covered_count(kSpace0), 0u);
  EXPECT_EQ(core.frontier_count(kSpace0), 200u);
  EXPECT_EQ(core.control_plane_stats().covering_only_publishes, 0u);

  // The same workload under a remote owner does aggregate, which pins the
  // blame for the zero above on the owner, not the workload.
  BrokerCore remote(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  Rng rng2(2468);
  for (std::int64_t i = 0; i < 200; ++i) {
    remote.add_subscription(kSpace0, SubscriptionId{i}, gen.generate(rng2), BrokerId{0});
  }
  EXPECT_GT(remote.covered_count(kSpace0), 0u);
}

TEST_F(CoveringDifferentialTest, CoveringOnOffRejectIdentically) {
  // Exception parity: a schema-arity mismatch must throw the same way
  // whether the subscription would have parked or entered a matcher, and
  // must leave no partial state behind in either config.
  BrokerCore with(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, {});
  BrokerCore without(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1, covering_off());
  const SchemaPtr other = make_synthetic_schema(2, 3);
  const Subscription wrong = Subscription::match_all(other);
  const Subscription broad = Subscription::match_all(schema_);

  with.add_subscription(kSpace0, SubscriptionId{1}, broad, BrokerId{1});
  without.add_subscription(kSpace0, SubscriptionId{1}, broad, BrokerId{1});
  for (BrokerCore* core : {&with, &without}) {
    EXPECT_THROW(core->add_subscription(kSpace0, SubscriptionId{2}, wrong, BrokerId{1}),
                 std::invalid_argument);
    core->control_plane().assert_serialized();
    EXPECT_FALSE(core->has_subscription(SubscriptionId{2}));
    EXPECT_EQ(core->subscription_count(kSpace0), 1u);
    EXPECT_FALSE(core->remove_subscription(SubscriptionId{2}));
  }
}

// ---------------------------------------------------------------------------
// Broker-level: reconnect reconciliation (PR 4 tombstones) composes with
// uncovering — a stale replica of a removed *coverer* must not resurrect,
// and its promoted child must keep matching.

TEST(CoveringBrokerIntegration, TombstonedCovererStaysDeadAndChildPromotes) {
  const SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});
  const BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  Ticks clock{0};
  std::vector<std::unique_ptr<Broker>> brokers;
  for (int b = 0; b < 2; ++b) {
    auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
    Broker::Options opts;
    opts.session_epoch = 100 + static_cast<std::uint64_t>(b);
    opts.clock = [&clock] { return clock; };
    brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                               std::vector<SchemaPtr>{schema}, *endpoint,
                                               opts));
    endpoint->set_handler(brokers.back().get());
  }
  ConnId link = net.connect("broker0", "broker1");
  brokers[0]->attach_broker_link(link, BrokerId{1});
  net.pump();

  std::vector<std::unique_ptr<Client>> clients;
  const auto add_client = [&](const std::string& name, int broker) -> Client& {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    clients.back()->bind(net.connect(name, "broker" + std::to_string(broker)));
    net.pump();
    return *clients.back();
  };
  Client& sub = add_client("sub", 1);
  Client& pub = add_client("pub", 0);

  // Same client, same owner broker: "volume > 10" parks under "volume > 0"
  // on both replicas.
  const std::uint64_t broad_token = sub.subscribe(0, "volume > 0");
  sub.subscribe(0, "volume > 10");
  net.pump();
  ASSERT_EQ(brokers[0]->subscription_count(), 2u);
  const auto broad_id = sub.subscription_id(broad_token);
  ASSERT_TRUE(broad_id.has_value());

  // The coverer dies while the link is down: broker 1 promotes the child
  // locally, broker 0 keeps a stale replica of the coverer.
  net.drop("broker0", link);
  sub.unsubscribe(*broad_id);
  net.pump();
  EXPECT_EQ(brokers[1]->subscription_count(), 1u);
  EXPECT_EQ(brokers[0]->subscription_count(), 2u);  // stale

  // Reconnect: broker 0 re-floods the stale coverer, broker 1's tombstone
  // kills it on both sides; the promoted child must be what remains.
  link = net.connect("broker0", "broker1");
  brokers[0]->attach_broker_link(link, BrokerId{1});
  net.pump();
  EXPECT_EQ(brokers[0]->subscription_count(), 1u);
  EXPECT_EQ(brokers[1]->subscription_count(), 1u);

  // Below the promoted child's threshold: silence. Above it: delivery. A
  // resurrection of the dead coverer would turn volume=5 into a delivery.
  pub.publish(0, Event(schema, {Value("IBM"), Value(100.0), Value(5)}));
  net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());
  pub.publish(0, Event(schema, {Value("IBM"), Value(100.0), Value(20)}));
  net.pump();
  EXPECT_EQ(sub.take_deliveries().size(), 1u);

  const auto stats = brokers[1]->stats();
  EXPECT_EQ(stats.control_plane.frontier_subscriptions, 1u);
  EXPECT_EQ(stats.control_plane.covered_subscriptions, 0u);
}

}  // namespace
}  // namespace gryphon
