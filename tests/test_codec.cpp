#include "event/codec.h"

#include <gtest/gtest.h>

#include "event/parser.h"

namespace gryphon {
namespace {

SchemaPtr stock_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}},
                                Attribute{"urgent", AttributeType::kBool, {}}});
}

TEST(Codec, ScalarRoundTrips) {
  Encoder enc;
  enc.put_u8(0xAB);
  enc.put_u16(0x1234);
  enc.put_u32(0xDEADBEEF);
  enc.put_u64(0x0123456789ABCDEFULL);
  enc.put_i64(-42);
  enc.put_f64(3.14159);
  enc.put_string("hello");
  const auto buffer = enc.take();

  Decoder dec(buffer);
  EXPECT_EQ(dec.get_u8(), 0xAB);
  EXPECT_EQ(dec.get_u16(), 0x1234);
  EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_DOUBLE_EQ(dec.get_f64(), 3.14159);
  EXPECT_EQ(dec.get_string(), "hello");
  EXPECT_TRUE(dec.done());
}

TEST(Codec, LittleEndianLayout) {
  Encoder enc;
  enc.put_u32(0x01020304);
  const auto& buffer = enc.buffer();
  ASSERT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer[0], 0x04);
  EXPECT_EQ(buffer[3], 0x01);
}

TEST(Codec, ValueRoundTrips) {
  const std::vector<Value> values = {Value(), Value(-7), Value(2.5), Value("IBM"), Value(true),
                                     Value(false), Value(std::string())};
  Encoder enc;
  for (const Value& v : values) enc.put_value(v);
  const auto buffer = enc.take();
  Decoder dec(buffer);
  for (const Value& v : values) EXPECT_EQ(dec.get_value(), v);
  EXPECT_TRUE(dec.done());
}

TEST(Codec, EventRoundTrip) {
  const auto schema = stock_schema();
  const Event e(schema, {Value("IBM"), Value(119.5), Value(3000), Value(true)});
  const auto bytes = encode_event(e);
  const Event back = decode_event(schema, bytes);
  EXPECT_TRUE(e == back);
}

TEST(Codec, EventArityMismatchThrows) {
  const auto schema = stock_schema();
  const Event e(schema, {Value("IBM"), Value(1.0), Value(1), Value(false)});
  const auto bytes = encode_event(e);
  const auto other = make_schema("s", {Attribute{"a", AttributeType::kInt, {}}});
  EXPECT_THROW(decode_event(other, bytes), CodecError);
}

TEST(Codec, SubscriptionRoundTripAllTestKinds) {
  const auto schema = stock_schema();
  const Subscription sub(schema, {AttributeTest::equals(Value("IBM")),
                                  AttributeTest::between(Value(100.0), Value(120.0), false, true),
                                  AttributeTest::not_equals(Value(3)),
                                  AttributeTest::dont_care()});
  const auto bytes = encode_subscription(sub);
  const Subscription back = decode_subscription(schema, bytes);
  EXPECT_TRUE(sub == back);
}

TEST(Codec, ParsedSubscriptionSurvivesRoundTrip) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "issue='HP' & price>10 & volume<=99");
  const Subscription back = decode_subscription(schema, encode_subscription(sub));
  EXPECT_TRUE(sub == back);
}

TEST(Codec, TruncatedBufferThrows) {
  const auto schema = stock_schema();
  const Event e(schema, {Value("IBM"), Value(1.0), Value(1), Value(false)});
  auto bytes = encode_event(e);
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(decode_event(schema, bytes), CodecError);
}

TEST(Codec, EmptyBufferThrows) {
  Decoder dec(std::span<const std::uint8_t>{});
  EXPECT_THROW(dec.get_u8(), CodecError);
}

TEST(Codec, BadValueTagThrows) {
  const std::vector<std::uint8_t> bogus = {0x7F};
  Decoder dec(bogus);
  EXPECT_THROW(dec.get_value(), CodecError);
}

TEST(Codec, BadTestKindThrows) {
  const std::vector<std::uint8_t> bogus = {0x09};
  Decoder dec(bogus);
  EXPECT_THROW(dec.get_test(), CodecError);
}

TEST(Codec, BytesRoundTrip) {
  Encoder enc;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 255, 0};
  enc.put_bytes(payload);
  const auto buffer = enc.take();
  Decoder dec(buffer);
  EXPECT_EQ(dec.get_bytes(), payload);
}

TEST(Codec, StringWithEmbeddedNull) {
  Encoder enc;
  const std::string s("a\0b", 3);
  enc.put_string(s);
  const auto buffer = enc.take();
  Decoder dec(buffer);
  EXPECT_EQ(dec.get_string(), s);
}

}  // namespace
}  // namespace gryphon
