// End-to-end broker prototype over the in-process transport: a three-broker
// line with clients, exercising subscription propagation, link-matched
// forwarding, client delivery, reconnect replay, and log GC (Section 4.2).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

struct TestBed {
  SchemaPtr schema = make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                            Attribute{"price", AttributeType::kDouble, {}},
                                            Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(3, 10, 0, 1);  // brokers 0-1-2, no static clients
  InProcNetwork net;
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Client>> clients;

  TestBed() {
    for (int b = 0; b < 3; ++b) {
      auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
      brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                                 std::vector<SchemaPtr>{schema}, *endpoint));
      endpoint->set_handler(brokers.back().get());
    }
    // Broker links along the line.
    link(0, 1);
    link(1, 2);
    net.pump();
  }

  void link(int a, int b) {
    const ConnId conn =
        net.connect("broker" + std::to_string(a), "broker" + std::to_string(b));
    brokers[static_cast<std::size_t>(a)]->attach_broker_link(conn, BrokerId{b});
  }

  Client& add_client(const std::string& name, int broker) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    const ConnId conn = net.connect(name, "broker" + std::to_string(broker));
    clients.back()->bind(conn);
    net.pump();
    return *clients.back();
  }

  Event trade(const char* issue, double price, int volume) {
    return Event(schema, {Value(issue), Value(price), Value(volume)});
  }
};

TEST(BrokerNetwork, SubscriptionPropagatesEverywhere) {
  TestBed bed;
  Client& subscriber = bed.add_client("sub", 2);
  subscriber.subscribe(0, "issue = \"IBM\"");
  bed.net.pump();
  for (const auto& broker : bed.brokers) {
    EXPECT_EQ(broker->stats().subscriptions_active, 1u) << "broker " << broker->self();
    EXPECT_EQ(broker->core().subscription_count(), 1u);
  }
  EXPECT_TRUE(subscriber.subscription_id(1).has_value());
}

TEST(BrokerNetwork, PublishReachesOnlyMatchingSubscribers) {
  TestBed bed;
  Client& ibm_watcher = bed.add_client("ibm", 2);
  Client& hp_watcher = bed.add_client("hp", 1);
  Client& publisher = bed.add_client("pub", 0);
  ibm_watcher.subscribe(0, "issue = \"IBM\" & price < 120");
  hp_watcher.subscribe(0, "issue = \"HP\"");
  bed.net.pump();

  publisher.publish(0, bed.trade("IBM", 119.0, 3000));
  publisher.publish(0, bed.trade("IBM", 125.0, 3000));
  publisher.publish(0, bed.trade("HP", 10.0, 5));
  bed.net.pump();

  const auto ibm_events = ibm_watcher.take_deliveries();
  ASSERT_EQ(ibm_events.size(), 1u);
  EXPECT_EQ(ibm_events[0].event.value(1).as_double(), 119.0);
  const auto hp_events = hp_watcher.take_deliveries();
  ASSERT_EQ(hp_events.size(), 1u);
  EXPECT_EQ(hp_events[0].event.value(0).as_string(), "HP");
  EXPECT_TRUE(publisher.take_deliveries().empty());
}

TEST(BrokerNetwork, ForwardingFollowsLinkMatching) {
  TestBed bed;
  Client& near_sub = bed.add_client("near", 0);
  Client& publisher = bed.add_client("pub", 0);
  near_sub.subscribe(0, "volume > 100");
  bed.net.pump();

  publisher.publish(0, bed.trade("X", 1.0, 500));
  bed.net.pump();
  EXPECT_EQ(near_sub.take_deliveries().size(), 1u);
  // The subscriber is local to broker 0: brokers 1 and 2 never saw the
  // event.
  EXPECT_EQ(bed.brokers[0]->stats().events_forwarded, 0u);
  EXPECT_EQ(bed.brokers[1]->stats().events_relayed, 0u);
  EXPECT_EQ(bed.brokers[2]->stats().events_relayed, 0u);
}

TEST(BrokerNetwork, RelayBrokerForwardsToFarSubscriber) {
  TestBed bed;
  Client& far_sub = bed.add_client("far", 2);
  Client& publisher = bed.add_client("pub", 0);
  far_sub.subscribe(0, "issue = \"IBM\"");
  bed.net.pump();

  publisher.publish(0, bed.trade("IBM", 1.0, 1));
  bed.net.pump();
  EXPECT_EQ(far_sub.take_deliveries().size(), 1u);
  EXPECT_EQ(bed.brokers[0]->stats().events_forwarded, 1u);
  EXPECT_EQ(bed.brokers[1]->stats().events_relayed, 1u);
  EXPECT_EQ(bed.brokers[1]->stats().events_forwarded, 1u);
  EXPECT_EQ(bed.brokers[2]->stats().events_relayed, 1u);
  EXPECT_EQ(bed.brokers[2]->stats().events_delivered, 1u);
}

TEST(BrokerNetwork, OneCopyPerClientEvenWithMultipleMatchingSubscriptions) {
  TestBed bed;
  Client& greedy = bed.add_client("greedy", 1);
  Client& publisher = bed.add_client("pub", 0);
  greedy.subscribe(0, "issue = \"IBM\"");
  greedy.subscribe(0, "volume > 0");
  bed.net.pump();

  publisher.publish(0, bed.trade("IBM", 1.0, 10));
  bed.net.pump();
  EXPECT_EQ(greedy.take_deliveries().size(), 1u);
}

TEST(BrokerNetwork, UnsubscribeStopsDeliveryNetworkWide) {
  TestBed bed;
  Client& sub = bed.add_client("sub", 2);
  Client& publisher = bed.add_client("pub", 0);
  const auto token = sub.subscribe(0, "issue = \"IBM\"");
  bed.net.pump();
  const auto id = sub.subscription_id(token);
  ASSERT_TRUE(id.has_value());

  sub.unsubscribe(*id);
  bed.net.pump();
  for (const auto& broker : bed.brokers) {
    EXPECT_EQ(broker->core().subscription_count(), 0u);
  }
  publisher.publish(0, bed.trade("IBM", 1.0, 1));
  bed.net.pump();
  EXPECT_TRUE(sub.take_deliveries().empty());
}

TEST(BrokerNetwork, ReconnectReplaysMissedEvents) {
  TestBed bed;
  auto* sub_endpoint = bed.net.create_endpoint("flaky");
  auto sub = std::make_unique<Client>("flaky", *sub_endpoint, std::vector<SchemaPtr>{bed.schema});
  sub_endpoint->set_handler(sub.get());
  const ConnId conn = bed.net.connect("flaky", "broker2");
  sub->bind(conn);
  bed.net.pump();
  sub->subscribe(0, "issue = \"IBM\"");
  Client& publisher = bed.add_client("pub", 0);
  bed.net.pump();

  publisher.publish(0, bed.trade("IBM", 100.0, 1));
  bed.net.pump();
  ASSERT_EQ(sub->take_deliveries().size(), 1u);

  // Sever the client link; the broker keeps logging.
  sub_endpoint->close(conn);
  bed.net.pump();
  EXPECT_FALSE(sub->connected());
  publisher.publish(0, bed.trade("IBM", 101.0, 2));
  publisher.publish(0, bed.trade("IBM", 102.0, 3));
  bed.net.pump();
  EXPECT_TRUE(sub->take_deliveries().empty());
  EXPECT_EQ(bed.brokers[2]->client_log_size("flaky"), 2u);

  // Reconnect under the same name: the missed suffix is replayed in order.
  const ConnId conn2 = bed.net.connect("flaky", "broker2");
  sub->bind(conn2);
  bed.net.pump();
  const auto replayed = sub->take_deliveries();
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].event.value(1).as_double(), 101.0);
  EXPECT_EQ(replayed[1].event.value(1).as_double(), 102.0);
  // Auto-acks flowed back; the broker log drains.
  bed.net.pump();
  EXPECT_EQ(bed.brokers[2]->client_log_size("flaky"), 0u);

  // New events flow normally after the replay.
  publisher.publish(0, bed.trade("IBM", 103.0, 4));
  bed.net.pump();
  ASSERT_EQ(sub->take_deliveries().size(), 1u);
}

TEST(BrokerNetwork, PublishBeforeHelloIsRejected) {
  TestBed bed;
  auto* endpoint = bed.net.create_endpoint("rogue");
  Client rogue("rogue", *endpoint, std::vector<SchemaPtr>{bed.schema});
  endpoint->set_handler(&rogue);
  const ConnId conn = bed.net.connect("rogue", "broker0");
  // Skip bind(): publish without a hello.
  endpoint->send(conn, wire::encode(wire::Publish{SpaceId{0}, encode_event(bed.trade("X", 1.0, 1))}));
  bed.net.pump();
  const auto errors = rogue.take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("hello"), std::string::npos);
}

TEST(BrokerNetwork, BadSpaceIndexRejected) {
  TestBed bed;
  Client& client = bed.add_client("c", 0);
  // Client-side validation catches the bad space before any frame is sent.
  EXPECT_THROW(client.subscribe(7, "issue = \"IBM\""), std::invalid_argument);
  EXPECT_THROW(client.publish(7, bed.trade("X", 1.0, 1)), std::invalid_argument);
}

TEST(BrokerNetwork, GarbageCollectorDropsStaleEntries) {
  Broker::Options options;
  options.log_retention = 0;  // everything is immediately stale
  TestBed bed;
  auto* endpoint = bed.net.create_endpoint("broker-gc");
  BrokerNetwork solo = make_line(1, 10, 0, 1);
  Broker broker(BrokerId{0}, solo, {bed.schema}, *endpoint, options);
  endpoint->set_handler(&broker);

  auto* sub_ep = bed.net.create_endpoint("sleepy");
  Client sub("sleepy", *sub_ep, std::vector<SchemaPtr>{bed.schema}, Client::Options{false});
  sub_ep->set_handler(&sub);
  const ConnId conn = bed.net.connect("sleepy", "broker-gc");
  sub.bind(conn);
  bed.net.pump();
  sub.subscribe(0, "volume > 0");

  auto* pub_ep = bed.net.create_endpoint("pub-gc");
  Client pub("pub-gc", *pub_ep, std::vector<SchemaPtr>{bed.schema});
  pub_ep->set_handler(&pub);
  pub.bind(bed.net.connect("pub-gc", "broker-gc"));
  bed.net.pump();
  pub.publish(0, bed.trade("X", 1.0, 5));
  bed.net.pump();

  EXPECT_EQ(broker.client_log_size("sleepy"), 1u);  // no auto-ack
  // Let at least one virtual tick (12 us) elapse so the zero-retention
  // horizon moves past the entry's timestamp.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(broker.collect_garbage(), 1u);
  EXPECT_EQ(broker.client_log_size("sleepy"), 0u);
}

TEST(BrokerNetwork, MultipleInformationSpaces) {
  const auto trades = make_schema("trades", {Attribute{"issue", AttributeType::kString, {}}});
  const auto alarms = make_schema("alarms", {Attribute{"severity", AttributeType::kInt, {}}});
  BrokerNetwork solo = make_line(1, 10, 0, 1);
  InProcNetwork net;
  auto* endpoint = net.create_endpoint("b");
  Broker broker(BrokerId{0}, solo, {trades, alarms}, *endpoint);
  endpoint->set_handler(&broker);

  auto* c_ep = net.create_endpoint("c");
  Client client("c", *c_ep, std::vector<SchemaPtr>{trades, alarms});
  c_ep->set_handler(&client);
  client.bind(net.connect("c", "b"));
  net.pump();

  client.subscribe(1, "severity >= 3");
  net.pump();
  client.publish(0, Event(trades, {Value("IBM")}));
  client.publish(1, Event(alarms, {Value(5)}));
  client.publish(1, Event(alarms, {Value(1)}));
  net.pump();
  const auto got = client.take_deliveries();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].space, 1u);
  EXPECT_EQ(got[0].event.value(0).as_int(), 5);
}


TEST(BrokerNetwork, LateBrokerLinkSyncsExistingSubscriptions) {
  // A subscription registered while a broker link is down (or before it is
  // established) must still reach the peer once the link comes up.
  TestBed bed;
  Client& sub = bed.add_client("early", 2);
  sub.subscribe(0, "issue = \"IBM\"");
  bed.net.pump();

  // A fourth broker joins the network late... simulate by dropping and
  // re-establishing the 1-2 link: state sync replays the subscription.
  // (Simpler deterministic variant: a fresh broker pair.)
  const auto schema = bed.schema;
  BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  auto* e0 = net.create_endpoint("x0");
  auto* e1 = net.create_endpoint("x1");
  Broker b0(BrokerId{0}, topo, {schema}, *e0);
  Broker b1(BrokerId{1}, topo, {schema}, *e1);
  e0->set_handler(&b0);
  e1->set_handler(&b1);

  // Subscribe at b1 BEFORE the broker link exists.
  auto* c_ep = net.create_endpoint("late-sub");
  Client late("late-sub", *c_ep, std::vector<SchemaPtr>{schema});
  c_ep->set_handler(&late);
  late.bind(net.connect("late-sub", "x1"));
  net.pump();
  late.subscribe(0, "volume > 10");
  net.pump();
  EXPECT_EQ(b0.core().subscription_count(), 0u);

  // Now bring the link up: the hello handshake syncs state both ways.
  b0.attach_broker_link(net.connect("x0", "x1"), BrokerId{1});
  net.pump();
  EXPECT_EQ(b0.core().subscription_count(), 1u);

  // And routing works immediately.
  auto* p_ep = net.create_endpoint("late-pub");
  Client pub("late-pub", *p_ep, std::vector<SchemaPtr>{schema});
  p_ep->set_handler(&pub);
  pub.bind(net.connect("late-pub", "x0"));
  net.pump();
  pub.publish(0, Event(schema, {Value("Z"), Value(1.0), Value(50)}));
  net.pump();
  EXPECT_EQ(late.take_deliveries().size(), 1u);
}


TEST(BrokerNetwork, QuenchingTellsPublishersWhetherAnyoneListens) {
  TestBed bed;
  Client& publisher = bed.add_client("pub", 0);
  // At hello time nobody subscribes anywhere: space 0 is quenched.
  EXPECT_FALSE(publisher.space_has_subscribers(0));

  // A subscriber at a remote broker un-quenches the publisher's broker
  // (subscription propagation flips the count network-wide).
  Client& sub = bed.add_client("sub", 2);
  const auto token = sub.subscribe(0, "issue = \"IBM\"");
  bed.net.pump();
  EXPECT_TRUE(publisher.space_has_subscribers(0));

  // Unsubscribing the only subscription quenches again.
  const auto id = sub.subscription_id(token);
  ASSERT_TRUE(id.has_value());
  sub.unsubscribe(*id);
  bed.net.pump();
  EXPECT_FALSE(publisher.space_has_subscribers(0));
}

TEST(BrokerNetwork, QuenchDefaultsToActiveBeforeHello) {
  TestBed bed;
  auto* endpoint = bed.net.create_endpoint("lonely");
  Client lonely("lonely", *endpoint, std::vector<SchemaPtr>{bed.schema});
  // No connection yet: never suppress on a stale view.
  EXPECT_TRUE(lonely.space_has_subscribers(0));
}

}  // namespace
}  // namespace gryphon
