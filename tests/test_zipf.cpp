#include "common/zipf.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace gryphon {
namespace {

TEST(Zipf, RejectsEmptyDomain) { EXPECT_THROW(Zipf(0), std::invalid_argument); }

TEST(Zipf, SingletonAlwaysZero) {
  Zipf z(1);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, PmfSumsToOne) {
  Zipf z(10, 1.0);
  double total = 0;
  for (std::uint32_t k = 0; k < 10; ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  Zipf z(4);
  EXPECT_EQ(z.pmf(4), 0.0);
  EXPECT_EQ(z.pmf(1000), 0.0);
}

TEST(Zipf, ClassicRatios) {
  // With s = 1, pmf(k) proportional to 1/(k+1): pmf(0) = 2 * pmf(1).
  Zipf z(5, 1.0);
  EXPECT_NEAR(z.pmf(0) / z.pmf(1), 2.0, 1e-9);
  EXPECT_NEAR(z.pmf(0) / z.pmf(4), 5.0, 1e-9);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Zipf z(8, 0.0);
  for (std::uint32_t k = 0; k < 8; ++k) EXPECT_NEAR(z.pmf(k), 1.0 / 8.0, 1e-12);
}

TEST(Zipf, SampleFrequenciesTrackPmf) {
  Zipf z(5, 1.0);
  Rng rng(77);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::uint32_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01) << "rank " << k;
  }
}

TEST(Zipf, RankZeroIsMostProbable) {
  Zipf z(20, 1.2);
  for (std::uint32_t k = 1; k < 20; ++k) EXPECT_GT(z.pmf(0), z.pmf(k));
}

TEST(LocalityPermutation, IsAPermutation) {
  for (std::uint32_t region = 0; region < 3; ++region) {
    const auto perm = locality_permutation(10, region);
    std::vector<bool> seen(10, false);
    for (const auto v : perm) {
      ASSERT_LT(v, 10u);
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(LocalityPermutation, RegionsFavourDifferentValues) {
  const auto p0 = locality_permutation(9, 0);
  const auto p1 = locality_permutation(9, 1);
  const auto p2 = locality_permutation(9, 2);
  // The hottest value (rank 0) must differ across the three regions.
  EXPECT_NE(p0[0], p1[0]);
  EXPECT_NE(p1[0], p2[0]);
  EXPECT_NE(p0[0], p2[0]);
}

TEST(LocalityPermutation, EmptyDomain) {
  EXPECT_TRUE(locality_permutation(0, 1).empty());
}

}  // namespace
}  // namespace gryphon
