// ContentRoutingNetwork: the full link-matching control plane (Section 3).
#include "routing/content_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "topology/builders.h"
#include "event/parser.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

Event ev(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<Value> v;
  for (const int x : values) v.emplace_back(x);
  return Event(schema, std::move(v));
}

/// Walks an event through the network hop by hop, following the route()
/// decisions, and returns the delivered clients. Also checks the "at most
/// one copy per link" property and that no broker is visited twice.
std::multiset<ClientId::rep_type> propagate(const ContentRoutingNetwork& crn, const Event& event,
                                            BrokerId root, std::uint64_t* total_steps = nullptr) {
  std::multiset<ClientId::rep_type> delivered;
  std::set<int> visited_brokers;
  std::vector<BrokerId> frontier{root};
  while (!frontier.empty()) {
    const BrokerId at = frontier.back();
    frontier.pop_back();
    EXPECT_TRUE(visited_brokers.insert(at.value).second)
        << "broker " << at << " received two copies";
    const auto result = crn.route(at, event, root);
    if (total_steps != nullptr) *total_steps += result.steps;
    for (const LinkIndex link : result.links) {
      const auto& port = crn.network().ports(at)[static_cast<std::size_t>(link.value)];
      if (port.kind == BrokerNetwork::PortKind::kClient) {
        delivered.insert(port.peer_client.value);
      } else {
        frontier.push_back(port.peer_broker);
      }
    }
  }
  return delivered;
}

std::multiset<ClientId::rep_type> expected_destinations(const ContentRoutingNetwork& crn,
                                                        const Event& event) {
  std::multiset<ClientId::rep_type> out;
  std::set<ClientId::rep_type> dedup;
  for (const SubscriptionId id : crn.match(event)) {
    dedup.insert(crn.destination_of(id).value);
  }
  for (const auto c : dedup) out.insert(c);
  return out;
}

class ContentRouterLineTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(4, 3);
  BrokerNetwork net_ = make_line(3, 10, 2, 1);  // brokers 0-1-2, 2 clients each
  ContentRoutingNetwork crn_{net_, schema_, {BrokerId{0}, BrokerId{2}}};
};

TEST_F(ContentRouterLineTest, DeliversToRemoteSubscriberOnly) {
  const ClientId far_client = net_.clients_of(BrokerId{2})[0];
  crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1}), far_client);

  const auto hit = propagate(crn_, ev(schema_, {1, 0, 0, 0}), BrokerId{0});
  EXPECT_EQ(hit, (std::multiset<ClientId::rep_type>{far_client.value}));

  const auto miss = propagate(crn_, ev(schema_, {2, 0, 0, 0}), BrokerId{0});
  EXPECT_TRUE(miss.empty());
}

TEST_F(ContentRouterLineTest, NoForwardingWhenNothingDownstreamMatches) {
  // Subscriber at broker 0; publish at broker 0: no broker link should be
  // used at all.
  const ClientId local = net_.clients_of(BrokerId{0})[0];
  crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}), local);
  const auto result = crn_.route(BrokerId{0}, ev(schema_, {0, 0, 0, 0}), BrokerId{0});
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(net_.ports(BrokerId{0})[static_cast<std::size_t>(result.links[0].value)].kind,
            BrokerNetwork::PortKind::kClient);
}

TEST_F(ContentRouterLineTest, EventsNeverFlowUpstream) {
  // Subscriber behind broker 0; event published at broker 2. At broker 0
  // (the leaf of that spanning tree) no broker links may fire.
  const ClientId client0 = net_.clients_of(BrokerId{0})[0];
  crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}), client0);
  const auto at_zero = crn_.route(BrokerId{0}, ev(schema_, {0, 0, 0, 0}), BrokerId{2});
  for (const LinkIndex link : at_zero.links) {
    EXPECT_EQ(net_.ports(BrokerId{0})[static_cast<std::size_t>(link.value)].kind,
              BrokerNetwork::PortKind::kClient);
  }
}

TEST_F(ContentRouterLineTest, InitializationMasksMatchTopology) {
  // At broker 1 on the tree rooted at 0: upstream port (to 0) is No, the
  // downstream port (to 2) and client ports are Maybe.
  const auto& mask = crn_.initialization_mask(BrokerId{1}, BrokerId{0});
  const auto up = net_.port_to_broker(BrokerId{1}, BrokerId{0});
  const auto down = net_.port_to_broker(BrokerId{1}, BrokerId{2});
  EXPECT_EQ(mask.at(up), Trit::No);
  EXPECT_EQ(mask.at(down), Trit::Maybe);
  for (const ClientId c : net_.clients_of(BrokerId{1})) {
    EXPECT_EQ(mask.at(net_.client_port(c)), Trit::Maybe);
  }
}

TEST_F(ContentRouterLineTest, UnsubscribeStopsDelivery) {
  const ClientId far_client = net_.clients_of(BrokerId{2})[1];
  crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {0, -1, -1, -1}), far_client);
  EXPECT_EQ(propagate(crn_, ev(schema_, {0, 0, 0, 0}), BrokerId{0}).size(), 1u);
  EXPECT_TRUE(crn_.unsubscribe(SubscriptionId{1}));
  EXPECT_TRUE(propagate(crn_, ev(schema_, {0, 0, 0, 0}), BrokerId{0}).empty());
  EXPECT_FALSE(crn_.unsubscribe(SubscriptionId{1}));
  crn_.check_consistency();
}

TEST_F(ContentRouterLineTest, DuplicateSubscriptionIdThrows) {
  const ClientId c = net_.clients_of(BrokerId{0})[0];
  crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}), c);
  EXPECT_THROW(crn_.subscribe(SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1}), c),
               std::invalid_argument);
}

TEST_F(ContentRouterLineTest, UnknownRootThrows) {
  EXPECT_THROW(crn_.route(BrokerId{0}, ev(schema_, {0, 0, 0, 0}), BrokerId{1}),
               std::invalid_argument);
}

TEST_F(ContentRouterLineTest, AcyclicNetworkSharesOneAnnotationGroup) {
  for (std::size_t b = 0; b < net_.broker_count(); ++b) {
    EXPECT_EQ(crn_.annotation_group_count(BrokerId{static_cast<BrokerId::rep_type>(b)}), 1u);
  }
}

TEST(ContentRouterFigure6, LateralLinksForceMultipleGroups) {
  const auto topo = make_figure6();
  ContentRoutingNetwork crn(topo.network, make_synthetic_schema(4, 3), topo.publisher_brokers);
  // Brokers adjacent to a lateral link see different dest->link maps for
  // different publishers' trees; at least one broker needs >1 group.
  std::size_t max_groups = 0;
  for (std::size_t b = 0; b < topo.network.broker_count(); ++b) {
    max_groups = std::max(max_groups, crn.annotation_group_count(
                                          BrokerId{static_cast<BrokerId::rep_type>(b)}));
  }
  EXPECT_GT(max_groups, 1u);
}

TEST(ContentRouterFigure6, ExactDeliveryForAllPublishers) {
  const auto topo = make_figure6();
  const auto schema = make_synthetic_schema(6, 4);
  ContentRoutingNetwork crn(topo.network, schema, topo.publisher_brokers);

  Rng rng(2718);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  std::int64_t next_id = 0;
  for (const ClientId c : topo.subscribers) {
    if (rng.chance(0.5)) continue;  // half the clients subscribe
    const auto perm = locality_permutation(
        4, static_cast<std::uint32_t>(topo.region_of[static_cast<std::size_t>(
               topo.network.client_home(c).value)]));
    crn.subscribe(SubscriptionId{next_id++}, gen.generate(rng, &perm), c);
  }

  EventGenerator events(schema);
  for (int i = 0; i < 60; ++i) {
    const Event e = events.generate(rng);
    const auto want = expected_destinations(crn, e);
    for (const BrokerId root : topo.publisher_brokers) {
      std::uint64_t steps = 0;
      EXPECT_EQ(propagate(crn, e, root, &steps), want)
          << "event " << e.to_text() << " from root " << root;
    }
  }
  crn.check_consistency();
}

TEST(ContentRouterChurn, IncrementalStateStaysConsistent) {
  const auto schema = make_synthetic_schema(4, 3);
  Rng rng(31337);
  auto net = make_random_tree_like(8, rng, 5, 20, 2, 1, 2);
  ContentRoutingNetwork crn(net, schema, {BrokerId{0}, BrokerId{3}});
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  EventGenerator events(schema);

  std::vector<SubscriptionId> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 200; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const SubscriptionId id{next_id++};
      const ClientId client{static_cast<ClientId::rep_type>(rng.below(net.client_count()))};
      crn.subscribe(id, gen.generate(rng), client);
      live.push_back(id);
    } else {
      const std::size_t pick = rng.below(live.size());
      EXPECT_TRUE(crn.unsubscribe(live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  crn.check_consistency();

  // Delivery is still exact after churn.
  for (int i = 0; i < 40; ++i) {
    const Event e = events.generate(rng);
    EXPECT_EQ(propagate(crn, e, BrokerId{0}), expected_destinations(crn, e));
    EXPECT_EQ(propagate(crn, e, BrokerId{3}), expected_destinations(crn, e));
  }
}

TEST(ContentRouterFactoring, FactoredMatcherRoutesIdentically) {
  const auto schema = make_synthetic_schema(6, 3);
  const auto net = make_line(4, 10, 2, 1);
  PstMatcherOptions factored;
  factored.factoring_levels = 2;
  ContentRoutingNetwork plain(net, schema, {BrokerId{0}});
  ContentRoutingNetwork with_factoring(net, schema, {BrokerId{0}}, factored);

  Rng rng(5150);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  std::int64_t next_id = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = gen.generate(rng);
    const ClientId client{static_cast<ClientId::rep_type>(rng.below(net.client_count()))};
    plain.subscribe(SubscriptionId{next_id}, s, client);
    with_factoring.subscribe(SubscriptionId{next_id}, s, client);
    ++next_id;
  }
  EventGenerator events(schema);
  for (int i = 0; i < 50; ++i) {
    const Event e = events.generate(rng);
    EXPECT_EQ(propagate(plain, e, BrokerId{0}), propagate(with_factoring, e, BrokerId{0}));
  }
  with_factoring.check_consistency();
}


TEST(ContentRouterMixedTypes, StringAndRangePredicatesRouteExactly) {
  // Open string/double attributes have no finite domains: annotations rely
  // on the implicit all-No alternative, and range tests exercise the
  // conservative general-branch handling. Delivery must stay exact.
  const auto schema = make_schema(
      "trades", {Attribute{"issue", AttributeType::kString, {}},
                 Attribute{"price", AttributeType::kDouble, {}},
                 Attribute{"volume", AttributeType::kInt, {}}});
  const auto net = make_line(3, 10, 2, 1);
  ContentRoutingNetwork crn(net, schema, {BrokerId{0}, BrokerId{2}});

  const ClientId ibm_watcher = net.clients_of(BrokerId{2})[0];
  const ClientId whale_watcher = net.clients_of(BrokerId{1})[0];
  crn.subscribe(SubscriptionId{1},
                parse_subscription(schema, "issue = 'IBM' & price < 120"), ibm_watcher);
  crn.subscribe(SubscriptionId{2}, parse_subscription(schema, "volume > 50000"),
                whale_watcher);

  const auto publish = [&](const char* issue, double price, int volume) {
    return propagate(crn, Event(schema, {Value(issue), Value(price), Value(volume)}),
                     BrokerId{0});
  };
  EXPECT_EQ(publish("IBM", 119.0, 10),
            (std::multiset<ClientId::rep_type>{ibm_watcher.value}));
  EXPECT_EQ(publish("IBM", 125.0, 10), (std::multiset<ClientId::rep_type>{}));
  EXPECT_EQ(publish("HP", 10.0, 99999),
            (std::multiset<ClientId::rep_type>{whale_watcher.value}));
  EXPECT_EQ(publish("IBM", 100.0, 99999),
            (std::multiset<ClientId::rep_type>{ibm_watcher.value, whale_watcher.value}));
  crn.check_consistency();
}

TEST(ContentRouterMixedTypes, RandomizedMixedPredicatesStayExact) {
  const auto schema = make_schema(
      "telemetry", {Attribute{"unit", AttributeType::kString, {}},
                    Attribute{"metric", AttributeType::kString, {}},
                    Attribute{"value", AttributeType::kDouble, {}},
                    Attribute{"ok", AttributeType::kBool, {}}});
  Rng rng(8080);
  const auto net = make_random_tree(6, rng, 5, 20, 2, 1);
  ContentRoutingNetwork crn(net, schema, {BrokerId{0}, BrokerId{4}});

  const char* units[] = {"reactor-1", "reactor-2", "boiler-7"};
  const char* metrics[] = {"temp", "pressure", "flow"};
  std::vector<std::pair<SubscriptionId, Subscription>> live;
  for (std::int64_t i = 0; i < 120; ++i) {
    std::vector<AttributeTest> tests(4);
    if (rng.chance(0.7)) tests[0] = AttributeTest::equals(Value(units[rng.below(3)]));
    if (rng.chance(0.5)) tests[1] = AttributeTest::equals(Value(metrics[rng.below(3)]));
    if (rng.chance(0.5)) {
      const double lo = static_cast<double>(rng.below(50));
      tests[2] = AttributeTest::between(Value(lo), Value(lo + 25.0));
    }
    if (rng.chance(0.3)) tests[3] = AttributeTest::equals(Value(rng.chance(0.5)));
    Subscription sub(schema, tests);
    const ClientId client{static_cast<ClientId::rep_type>(rng.below(net.client_count()))};
    crn.subscribe(SubscriptionId{i}, sub, client);
    live.emplace_back(SubscriptionId{i}, sub);
  }

  for (int trial = 0; trial < 80; ++trial) {
    const Event e(schema, {Value(units[rng.below(3)]), Value(metrics[rng.below(3)]),
                           Value(static_cast<double>(rng.below(100))), Value(rng.chance(0.5))});
    EXPECT_EQ(propagate(crn, e, BrokerId{0}), expected_destinations(crn, e));
    EXPECT_EQ(propagate(crn, e, BrokerId{4}), expected_destinations(crn, e));
  }
  crn.check_consistency();
}

}  // namespace
}  // namespace gryphon
