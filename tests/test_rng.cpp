#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gryphon {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Splitmix64, KnownFirstValue) {
  // Reference value for seed 0 from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace gryphon
