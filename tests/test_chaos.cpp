// Chaos harness (docs/fault-tolerance.md): a broker line under seeded
// transport faults — dropped, duplicated, delayed/reordered frames and
// repeatedly severed/healed (partitioned) links — must still deliver every
// published event to every matching subscriber exactly once, byte-for-byte
// what a fault-free oracle run delivers.
//
// Faults are restricted to the broker-link session frames (EventForward /
// BrokerAck / LinkHeartbeat): that is the machinery under test; client-plane
// frames and the subscription control plane run clean so the oracle
// comparison isolates the link sessions' exactly-once guarantee.
//
// The suite runs per seed (GRYPHON_CHAOS_SEED adds one; tools/ci.sh's chaos
// leg sweeps several via `ctest -R ChaosTest`), both in synchronous matching
// mode and with a match worker pipeline — the latter doubles as a TSan
// target (label: concurrency), sends racing the pump thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/fault_transport.h"
#include "broker/inproc_transport.h"
#include "common/rng.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

constexpr int kBrokers = 3;

struct ChaosBed {
  SchemaPtr schema = make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                            Attribute{"price", AttributeType::kDouble, {}},
                                            Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(kBrokers, 10, 0, 1);
  InProcNetwork net;
  // Match workers read the clock through Options::clock while the test
  // thread advances it between pumps, so the cell must be atomic.
  std::atomic<Ticks> clock{0};
  std::vector<std::unique_ptr<FaultInjectingTransport>> faults;
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ConnId> link_conns;  // dialer-side conn of link i -> i+1

  ChaosBed(std::uint64_t seed, bool inject, std::size_t match_threads) {
    for (int b = 0; b < kBrokers; ++b) {
      auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
      FaultInjectingTransport::Options fopts;
      fopts.seed = seed * 1000003 + static_cast<std::uint64_t>(b);
      if (inject) {
        fopts.drop_rate = 0.15;
        fopts.duplicate_rate = 0.10;
        fopts.delay_rate = 0.15;
        fopts.delay_max_frames = 5;
      }
      fopts.fault_frame_types = {
          static_cast<std::uint8_t>(wire::FrameType::kEventForward),
          static_cast<std::uint8_t>(wire::FrameType::kBrokerAck),
          static_cast<std::uint8_t>(wire::FrameType::kLinkHeartbeat)};
      faults.push_back(std::make_unique<FaultInjectingTransport>(*endpoint, fopts));

      Broker::Options opts;
      opts.session_epoch = 1000 + static_cast<std::uint64_t>(b);
      opts.link_retransmit_timeout = 50;
      opts.link_heartbeat_interval = 200;
      opts.match_threads = match_threads;
      opts.clock = [this] { return clock.load(std::memory_order_relaxed); };
      brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                                 std::vector<SchemaPtr>{schema},
                                                 *faults.back(), opts));
      faults.back()->set_handler(brokers.back().get());
      endpoint->set_handler(faults.back().get());
    }
    for (int b = 0; b + 1 < kBrokers; ++b) {
      const ConnId conn = net.connect("broker" + std::to_string(b),
                                      "broker" + std::to_string(b + 1));
      link_conns.push_back(conn);
      brokers[static_cast<std::size_t>(b)]->attach_broker_link(conn, BrokerId{b + 1});
    }
    net.pump();
  }

  Client& add_client(const std::string& name, int broker) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    const ConnId conn = net.connect(name, "broker" + std::to_string(broker));
    clients.back()->bind(conn);
    net.pump();
    return *clients.back();
  }

  void tick_all() {
    for (auto& broker : brokers) broker->tick_links(clock);
  }

  void flush_all() {
    for (auto& broker : brokers) broker->flush();
    for (auto& fault : faults) fault->flush_delayed();
  }
};

std::vector<int> tags_of(std::vector<Client::Delivery>& into_sorted) {
  std::vector<int> tags;
  tags.reserve(into_sorted.size());
  for (const auto& delivery : into_sorted) {
    tags.push_back(static_cast<int>(delivery.event.value(2).as_int()));
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

/// Runs the seeded workload + fault schedule on a bed; returns each
/// subscriber's delivered tag multiset (sorted), one per subscriber.
std::vector<std::vector<int>> run_chaos(ChaosBed& bed, std::uint64_t seed, bool inject,
                                        std::vector<int>& published_out) {
  Client& pub = bed.add_client("pub", 0);
  std::vector<Client*> subs = {&bed.add_client("sub0", 0), &bed.add_client("sub1", 1),
                               &bed.add_client("sub2", 2)};
  for (Client* sub : subs) sub->subscribe(0, "volume > 0");
  bed.net.pump();

  // Two decorrelated streams: the workload schedule must be identical
  // between the chaos run and the oracle run, so link-state decisions draw
  // from their own stream.
  Rng workload(seed);
  Rng severs(seed ^ 0xabcddcbaULL);
  std::vector<bool> severed(bed.link_conns.size(), false);

  int next_tag = 1;
  std::vector<std::vector<Client::Delivery>> collected(subs.size());
  for (int round = 0; round < 50; ++round) {
    if (inject) {
      for (std::size_t l = 0; l < bed.link_conns.size(); ++l) {
        if (severs.chance(0.12)) {
          severed[l] = !severed[l];
          if (severed[l]) {
            bed.faults[l]->sever(bed.link_conns[l]);  // partition the link
          } else {
            bed.faults[l]->heal(bed.link_conns[l]);
          }
        }
      }
    } else {
      // Keep the sever stream in lockstep so the workload stream below
      // sees identical draws either way.
      for (std::size_t l = 0; l < bed.link_conns.size(); ++l) (void)severs.chance(0.12);
    }
    const std::uint64_t burst = workload.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      pub.publish(0, Event(bed.schema, {Value("IBM"), Value(100.0 + next_tag),
                                        Value(next_tag)}));
      published_out.push_back(next_tag++);
    }
    bed.net.pump();
    bed.clock += 60;
    bed.tick_all();
    bed.net.pump();
    for (std::size_t s = 0; s < subs.size(); ++s) {
      auto batch = subs[s]->take_deliveries();
      for (auto& d : batch) collected[s].push_back(std::move(d));
    }
  }

  // Quiesce: heal every partition, release held frames, and drive the
  // retransmission timers until the network drains or we give up.
  for (auto& fault : bed.faults) fault->heal_all();
  const auto complete = [&] {
    for (const auto& got : collected) {
      if (got.size() < published_out.size()) return false;
    }
    return true;
  };
  for (int i = 0; i < 400 && !complete(); ++i) {
    bed.clock += 100;  // comfortably past the retransmit timeout
    bed.tick_all();
    bed.flush_all();
    bed.net.pump();
    for (std::size_t s = 0; s < subs.size(); ++s) {
      auto batch = subs[s]->take_deliveries();
      for (auto& d : batch) collected[s].push_back(std::move(d));
    }
  }

  std::vector<std::vector<int>> result;
  result.reserve(collected.size());
  for (auto& got : collected) result.push_back(tags_of(got));
  return result;
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, ExactlyOnceDeliveryUnderLinkFaults) {
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_chaos(oracle_bed, seed, false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/0);
  const auto chaos = run_chaos(chaos_bed, seed, true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published) << "workload schedules diverged";
  ASSERT_FALSE(chaos_published.empty());
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s])
        << "subscriber " << s << " delivered multiset diverged from oracle (seed " << seed
        << ")";
    EXPECT_EQ(chaos[s], chaos_published)
        << "subscriber " << s << " did not get exactly the published multiset";
  }

  // Sanity: the run actually exercised the machinery.
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  for (const auto& fault : chaos_bed.faults) {
    const auto counters = fault->counters();
    injected += counters.dropped + counters.duplicated + counters.delayed +
                counters.severed_out + counters.severed_in;
  }
  for (const auto& broker : chaos_bed.brokers) {
    const auto stats = broker->stats();
    recovered += stats.retransmits + stats.duplicates_dropped;
  }
  EXPECT_GT(injected, 0u) << "fault injection was a no-op (seed " << seed << ")";
  EXPECT_GT(recovered, 0u) << "no retransmit/dedup activity (seed " << seed << ")";
}

TEST_P(ChaosTest, ExactlyOnceWithMatchWorkerPipeline) {
  // Same property with concurrent match workers: subscription state is
  // fixed before the storm, so out-of-order application cannot change the
  // delivered multiset — and TSan gets sends racing the pump thread.
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_chaos(oracle_bed, seed, false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/2);
  const auto chaos = run_chaos(chaos_bed, seed, true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published);
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s]) << "subscriber " << s << " (seed " << seed << ")";
  }
}

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("GRYPHON_CHAOS_SEED")) {
    const auto extra = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    if (std::find(seeds.begin(), seeds.end(), extra) == seeds.end()) seeds.push_back(extra);
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::ValuesIn(chaos_seeds()));

}  // namespace
}  // namespace gryphon
