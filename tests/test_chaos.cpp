// Chaos harness (docs/fault-tolerance.md): a broker line under seeded
// transport faults — dropped, duplicated, delayed/reordered frames and
// repeatedly severed/healed (partitioned) links — must still deliver every
// published event to every matching subscriber exactly once, byte-for-byte
// what a fault-free oracle run delivers.
//
// Faults are restricted to the broker-link session frames (EventForward /
// BrokerAck / LinkHeartbeat): that is the machinery under test; client-plane
// frames and the subscription control plane run clean so the oracle
// comparison isolates the link sessions' exactly-once guarantee.
//
// The suite runs per seed (GRYPHON_CHAOS_SEED adds one; tools/ci.sh's chaos
// leg sweeps several via `ctest -R ChaosTest`), both in synchronous matching
// mode and with a match worker pipeline — the latter doubles as a TSan
// target (label: concurrency), sends racing the pump thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/fault_transport.h"
#include "broker/inproc_transport.h"
#include "common/rng.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

constexpr int kBrokers = 3;

struct ChaosBed {
  SchemaPtr schema = make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                            Attribute{"price", AttributeType::kDouble, {}},
                                            Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(kBrokers, 10, 0, 1);
  InProcNetwork net;
  // Match workers read the clock through Options::clock while the test
  // thread advances it between pumps, so the cell must be atomic.
  std::atomic<Ticks> clock{0};
  std::vector<std::unique_ptr<FaultInjectingTransport>> faults;
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<ConnId> link_conns;  // dialer-side conn of link i -> i+1
  std::size_t match_threads{0};
  // Broker-kill machinery (the failover suite): a hot standby shadowing one
  // broker, plus enough bookkeeping to sever every connection the victim
  // holds and stop driving its timers.
  std::unique_ptr<Broker> standby;
  ConnId repl_conn{kInvalidConn};
  std::vector<bool> alive = std::vector<bool>(kBrokers, true);
  std::unordered_map<std::string, ConnId> client_conns;
  std::unordered_map<std::string, int> client_brokers;

  ChaosBed(std::uint64_t seed, bool inject, std::size_t match_threads)
      : match_threads(match_threads) {
    for (int b = 0; b < kBrokers; ++b) {
      auto* endpoint = net.create_endpoint("broker" + std::to_string(b));
      FaultInjectingTransport::Options fopts;
      fopts.seed = seed * 1000003 + static_cast<std::uint64_t>(b);
      if (inject) {
        fopts.drop_rate = 0.15;
        fopts.duplicate_rate = 0.10;
        fopts.delay_rate = 0.15;
        fopts.delay_max_frames = 5;
      }
      fopts.fault_frame_types = {
          static_cast<std::uint8_t>(wire::FrameType::kEventForward),
          static_cast<std::uint8_t>(wire::FrameType::kBrokerAck),
          static_cast<std::uint8_t>(wire::FrameType::kLinkHeartbeat)};
      faults.push_back(std::make_unique<FaultInjectingTransport>(*endpoint, fopts));

      Broker::Options opts;
      opts.session_epoch = 1000 + static_cast<std::uint64_t>(b);
      opts.link_retransmit_timeout = 50;
      opts.link_heartbeat_interval = 200;
      opts.match_threads = match_threads;
      opts.clock = [this] { return clock.load(std::memory_order_relaxed); };
      brokers.push_back(std::make_unique<Broker>(BrokerId{b}, topo,
                                                 std::vector<SchemaPtr>{schema},
                                                 *faults.back(), opts));
      faults.back()->set_handler(brokers.back().get());
      endpoint->set_handler(faults.back().get());
    }
    for (int b = 0; b + 1 < kBrokers; ++b) {
      const ConnId conn = net.connect("broker" + std::to_string(b),
                                      "broker" + std::to_string(b + 1));
      link_conns.push_back(conn);
      brokers[static_cast<std::size_t>(b)]->attach_broker_link(conn, BrokerId{b + 1});
    }
    net.pump();
  }

  Client& add_client(const std::string& name, int broker) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(
        std::make_unique<Client>(name, *endpoint, std::vector<SchemaPtr>{schema}));
    endpoint->set_handler(clients.back().get());
    const ConnId conn = net.connect(name, "broker" + std::to_string(broker));
    client_conns[name] = conn;
    client_brokers[name] = broker;
    clients.back()->bind(conn);
    net.pump();
    return *clients.back();
  }

  /// Brings up a hot standby shadowing broker `b` (same BrokerId — promotion
  /// is identity takeover) and dials the replication link. The standby's
  /// transport is the raw endpoint: the replication stream runs clean, only
  /// the link-session frames are under fault injection.
  void attach_standby(int b) {
    auto* endpoint = net.create_endpoint("standby" + std::to_string(b));
    Broker::Options opts;
    opts.session_epoch = 7777;  // replaced by the snapshot's epoch
    opts.standby = true;
    opts.link_retransmit_timeout = 50;
    opts.link_heartbeat_interval = 200;
    opts.repl_retransmit_timeout = 50;
    opts.match_threads = match_threads;
    opts.clock = [this] { return clock.load(std::memory_order_relaxed); };
    standby = std::make_unique<Broker>(BrokerId{b}, topo, std::vector<SchemaPtr>{schema},
                                       *endpoint, opts);
    endpoint->set_handler(standby.get());
    repl_conn = net.connect("standby" + std::to_string(b), "broker" + std::to_string(b));
    standby->attach_replication_link(repl_conn);
    net.pump();
  }

  /// Full broker death: every connection the victim holds — links, local
  /// clients, the replication stream — drops at once, and its timers stop.
  void kill_broker(int b) {
    if (b > 0) {
      net.drop("broker" + std::to_string(b - 1),
               link_conns[static_cast<std::size_t>(b - 1)]);
    }
    if (b + 1 < kBrokers) {
      net.drop("broker" + std::to_string(b), link_conns[static_cast<std::size_t>(b)]);
    }
    for (const auto& [name, conn] : client_conns) {
      if (client_brokers[name] == b) net.drop(name, conn);
    }
    if (repl_conn != kInvalidConn) {
      net.drop("standby" + std::to_string(b), repl_conn);
      repl_conn = kInvalidConn;
    }
    alive[static_cast<std::size_t>(b)] = false;
    net.pump();
  }

  void tick_all() {
    for (int b = 0; b < kBrokers; ++b) {
      if (alive[static_cast<std::size_t>(b)]) {
        brokers[static_cast<std::size_t>(b)]->tick_links(clock);
      }
    }
    if (standby) standby->tick_links(clock);
  }

  void flush_all() {
    for (auto& broker : brokers) broker->flush();
    if (standby) standby->flush();
    for (auto& fault : faults) fault->flush_delayed();
  }
};

std::vector<int> tags_of(std::vector<Client::Delivery>& into_sorted) {
  std::vector<int> tags;
  tags.reserve(into_sorted.size());
  for (const auto& delivery : into_sorted) {
    tags.push_back(static_cast<int>(delivery.event.value(2).as_int()));
  }
  std::sort(tags.begin(), tags.end());
  return tags;
}

/// Runs the seeded workload + fault schedule on a bed; returns each
/// subscriber's delivered tag multiset (sorted), one per subscriber.
std::vector<std::vector<int>> run_chaos(ChaosBed& bed, std::uint64_t seed, bool inject,
                                        std::vector<int>& published_out) {
  Client& pub = bed.add_client("pub", 0);
  std::vector<Client*> subs = {&bed.add_client("sub0", 0), &bed.add_client("sub1", 1),
                               &bed.add_client("sub2", 2)};
  for (Client* sub : subs) sub->subscribe(0, "volume > 0");
  bed.net.pump();

  // Two decorrelated streams: the workload schedule must be identical
  // between the chaos run and the oracle run, so link-state decisions draw
  // from their own stream.
  Rng workload(seed);
  Rng severs(seed ^ 0xabcddcbaULL);
  std::vector<bool> severed(bed.link_conns.size(), false);

  int next_tag = 1;
  std::vector<std::vector<Client::Delivery>> collected(subs.size());
  for (int round = 0; round < 50; ++round) {
    if (inject) {
      for (std::size_t l = 0; l < bed.link_conns.size(); ++l) {
        if (severs.chance(0.12)) {
          severed[l] = !severed[l];
          if (severed[l]) {
            bed.faults[l]->sever(bed.link_conns[l]);  // partition the link
          } else {
            bed.faults[l]->heal(bed.link_conns[l]);
          }
        }
      }
    } else {
      // Keep the sever stream in lockstep so the workload stream below
      // sees identical draws either way.
      for (std::size_t l = 0; l < bed.link_conns.size(); ++l) (void)severs.chance(0.12);
    }
    const std::uint64_t burst = workload.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      pub.publish(0, Event(bed.schema, {Value("IBM"), Value(100.0 + next_tag),
                                        Value(next_tag)}));
      published_out.push_back(next_tag++);
    }
    bed.net.pump();
    bed.clock += 60;
    bed.tick_all();
    bed.net.pump();
    for (std::size_t s = 0; s < subs.size(); ++s) {
      auto batch = subs[s]->take_deliveries();
      for (auto& d : batch) collected[s].push_back(std::move(d));
    }
  }

  // Quiesce: heal every partition, release held frames, and drive the
  // retransmission timers until the network drains or we give up.
  for (auto& fault : bed.faults) fault->heal_all();
  const auto complete = [&] {
    for (const auto& got : collected) {
      if (got.size() < published_out.size()) return false;
    }
    return true;
  };
  for (int i = 0; i < 400 && !complete(); ++i) {
    bed.clock += 100;  // comfortably past the retransmit timeout
    bed.tick_all();
    bed.flush_all();
    bed.net.pump();
    for (std::size_t s = 0; s < subs.size(); ++s) {
      auto batch = subs[s]->take_deliveries();
      for (auto& d : batch) collected[s].push_back(std::move(d));
    }
  }

  std::vector<std::vector<int>> result;
  result.reserve(collected.size());
  for (auto& got : collected) result.push_back(tags_of(got));
  return result;
}

/// The broker-kill workload: same three-broker line and publish schedule as
/// run_chaos, but halfway through the middle broker dies outright — every
/// connection it holds severed at once — and its hot standby is promoted.
/// Neighbors redial the promoted standby, the orphaned subscriber fails
/// over with its redelivery cursor, and the run must still converge on the
/// oracle's delivered multiset: no silent loss, no duplicates. Any possible
/// loss would have to surface through the client's reported truncation
/// bound — asserted below to be reported, and to be vacuous (nothing was
/// actually lost: the kill lands on a drained replication stream, so the
/// standby is an exact mirror).
std::vector<std::vector<int>> run_failover(ChaosBed& bed, std::uint64_t seed, bool kill,
                                           std::vector<int>& published_out) {
  constexpr int kVictim = 1;
  Client& pub = bed.add_client("pub", 0);
  std::vector<Client*> subs = {&bed.add_client("sub0", 0), &bed.add_client("sub1", 1),
                               &bed.add_client("sub2", 2)};
  for (Client* sub : subs) sub->subscribe(0, "volume > 0");
  bed.net.pump();
  if (kill) bed.attach_standby(kVictim);

  Rng workload(seed);
  int next_tag = 1;
  std::vector<std::vector<Client::Delivery>> collected(subs.size());
  const auto collect = [&] {
    for (std::size_t s = 0; s < subs.size(); ++s) {
      auto batch = subs[s]->take_deliveries();
      for (auto& d : batch) collected[s].push_back(std::move(d));
    }
  };

  for (int round = 0; round < 30; ++round) {
    if (kill && round == 15) {
      // Drive the timers until in-flight frames drain, so the replication
      // stream is fully applied — then the kill is a *clean* failover and
      // the oracle comparison can demand full equality.
      for (int i = 0; i < 8; ++i) {
        bed.clock += 100;
        bed.tick_all();
        bed.flush_all();
        bed.net.pump();
      }
      // The loop above ends with a pump, which can hand the victim fresh
      // match work it has already acked upstream — killed there, the event
      // would be silently lost (accepted, never matched, never replicated).
      // Every frame that enqueues match work or replication traffic bumps a
      // counter at accept time, so drain (no ticks: timers would inject
      // retransmits forever) until an iteration moves no counter: queues
      // empty, update stream fully applied.
      const auto progress = [&] {
        std::uint64_t sum = bed.standby->stats().repl_updates_applied;
        for (const auto& broker : bed.brokers) {
          const Broker::Stats s = broker->stats();
          sum += s.events_published + s.events_relayed + s.events_delivered +
                 s.events_forwarded + s.repl_updates_sent;
        }
        return sum;
      };
      for (std::uint64_t prev = progress();;) {
        bed.flush_all();
        bed.net.pump();
        const std::uint64_t cur = progress();
        if (cur == prev) break;
        prev = cur;
      }
      collect();
      bed.kill_broker(kVictim);
      bed.standby->promote();
      // Neighbors redial the promoted standby under the victim's identity;
      // the orphaned subscriber rebinds with its cursor intact.
      const ConnId left = bed.net.connect("broker0", "standby1");
      bed.brokers[0]->attach_broker_link(left, BrokerId{kVictim});
      const ConnId right = bed.net.connect("broker2", "standby1");
      bed.brokers[2]->attach_broker_link(right, BrokerId{kVictim});
      subs[1]->bind(bed.net.connect("sub1", "standby1"));
      bed.net.pump();
    }
    const std::uint64_t burst = workload.below(4);
    for (std::uint64_t i = 0; i < burst; ++i) {
      pub.publish(0, Event(bed.schema, {Value("IBM"), Value(100.0 + next_tag),
                                        Value(next_tag)}));
      published_out.push_back(next_tag++);
    }
    bed.net.pump();
    bed.clock += 60;
    bed.tick_all();
    bed.net.pump();
    collect();
  }

  for (auto& fault : bed.faults) fault->heal_all();
  const auto complete = [&] {
    for (const auto& got : collected) {
      if (got.size() < published_out.size()) return false;
    }
    return true;
  };
  for (int i = 0; i < 400 && !complete(); ++i) {
    bed.clock += 100;
    bed.tick_all();
    bed.flush_all();
    bed.net.pump();
    collect();
  }

  std::vector<std::vector<int>> result;
  result.reserve(collected.size());
  for (auto& got : collected) result.push_back(tags_of(got));
  return result;
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, ExactlyOnceDeliveryUnderLinkFaults) {
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_chaos(oracle_bed, seed, false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/0);
  const auto chaos = run_chaos(chaos_bed, seed, true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published) << "workload schedules diverged";
  ASSERT_FALSE(chaos_published.empty());
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s])
        << "subscriber " << s << " delivered multiset diverged from oracle (seed " << seed
        << ")";
    EXPECT_EQ(chaos[s], chaos_published)
        << "subscriber " << s << " did not get exactly the published multiset";
  }

  // Sanity: the run actually exercised the machinery.
  std::uint64_t injected = 0;
  std::uint64_t recovered = 0;
  for (const auto& fault : chaos_bed.faults) {
    const auto counters = fault->counters();
    injected += counters.dropped + counters.duplicated + counters.delayed +
                counters.severed_out + counters.severed_in;
  }
  for (const auto& broker : chaos_bed.brokers) {
    const auto stats = broker->stats();
    recovered += stats.retransmits + stats.duplicates_dropped;
  }
  EXPECT_GT(injected, 0u) << "fault injection was a no-op (seed " << seed << ")";
  EXPECT_GT(recovered, 0u) << "no retransmit/dedup activity (seed " << seed << ")";
}

TEST_P(ChaosTest, ExactlyOnceWithMatchWorkerPipeline) {
  // Same property with concurrent match workers: subscription state is
  // fixed before the storm, so out-of-order application cannot change the
  // delivered multiset — and TSan gets sends racing the pump thread.
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_chaos(oracle_bed, seed, false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/2);
  const auto chaos = run_chaos(chaos_bed, seed, true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published);
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s]) << "subscriber " << s << " (seed " << seed << ")";
  }
}

class FailoverChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailoverChaosTest, BrokerKillPromoteStandbyMatchesOracle) {
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_failover(oracle_bed, seed, /*kill=*/false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/0);
  const auto chaos = run_failover(chaos_bed, seed, /*kill=*/true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published) << "workload schedules diverged";
  ASSERT_FALSE(chaos_published.empty());
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s])
        << "subscriber " << s << " delivered multiset diverged from oracle across the "
        << "broker kill (seed " << seed << ")";
    EXPECT_EQ(chaos[s], chaos_published)
        << "subscriber " << s << " did not get exactly the published multiset (seed "
        << seed << ")";
  }

  // The takeover actually happened, and the orphaned subscriber was told
  // its honest possible-loss bound (vacuous here — the kill landed on a
  // drained replication stream, so nothing was actually lost).
  const auto standby_stats = chaos_bed.standby->stats();
  EXPECT_EQ(standby_stats.promotions, 1u);
  EXPECT_GT(standby_stats.failover_seq_rebases, 0u);
  EXPECT_GT(chaos_bed.clients[2]->replay_truncated_through(), 0u);  // sub1
}

TEST_P(FailoverChaosTest, BrokerKillWithMatchWorkerPipeline) {
  // Same property with concurrent match workers on every broker including
  // the standby (whose apply loop races its own promotion timers under
  // TSan via the chaos label on this binary).
  const std::uint64_t seed = GetParam();

  std::vector<int> oracle_published;
  ChaosBed oracle_bed(seed, /*inject=*/false, /*match_threads=*/0);
  const auto oracle = run_failover(oracle_bed, seed, /*kill=*/false, oracle_published);

  std::vector<int> chaos_published;
  ChaosBed chaos_bed(seed, /*inject=*/true, /*match_threads=*/2);
  const auto chaos = run_failover(chaos_bed, seed, /*kill=*/true, chaos_published);

  ASSERT_EQ(chaos_published, oracle_published);
  for (std::size_t s = 0; s < chaos.size(); ++s) {
    EXPECT_EQ(chaos[s], oracle[s]) << "subscriber " << s << " (seed " << seed << ")";
  }
  EXPECT_EQ(chaos_bed.standby->stats().promotions, 1u);
}

std::vector<std::uint64_t> chaos_seeds() {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("GRYPHON_CHAOS_SEED")) {
    const auto extra = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    if (std::find(seeds.begin(), seeds.end(), extra) == seeds.end()) seeds.push_back(extra);
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::ValuesIn(chaos_seeds()));

/// The broker-kill acceptance bar (ISSUE: "across >= 5 seeds"): a wider
/// fixed sweep than the link-fault suite, plus the GRYPHON_CHAOS_SEED extra.
std::vector<std::uint64_t> failover_seeds() {
  std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5};
  if (const char* env = std::getenv("GRYPHON_CHAOS_SEED")) {
    const auto extra = static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    if (std::find(seeds.begin(), seeds.end(), extra) == seeds.end()) seeds.push_back(extra);
  }
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverChaosTest,
                         ::testing::ValuesIn(failover_seeds()));

}  // namespace
}  // namespace gryphon
