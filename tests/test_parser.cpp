#include "event/parser.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gryphon {
namespace {

SchemaPtr stock_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}},
                                Attribute{"urgent", AttributeType::kBool, {}}});
}

Event trade(const SchemaPtr& schema, const char* issue, double price, int volume,
            bool urgent = false) {
  return Event(schema, {Value(issue), Value(price), Value(volume), Value(urgent)});
}

TEST(Parser, PaperExample) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "issue=\"IBM\" & price < 120 & volume > 1000");
  EXPECT_TRUE(sub.matches(trade(schema, "IBM", 119.0, 1500)));
  EXPECT_FALSE(sub.matches(trade(schema, "IBM", 121.0, 1500)));
  EXPECT_FALSE(sub.matches(trade(schema, "SUN", 119.0, 1500)));
  EXPECT_FALSE(sub.matches(trade(schema, "IBM", 119.0, 999)));
}

TEST(Parser, SingleQuotesAndDoubleAmp) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "issue='HP' && volume >= 10");
  EXPECT_TRUE(sub.matches(trade(schema, "HP", 1.0, 10)));
  EXPECT_FALSE(sub.matches(trade(schema, "HP", 1.0, 9)));
}

TEST(Parser, AndKeyword) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "price <= 5 and volume != 3");
  EXPECT_TRUE(sub.matches(trade(schema, "X", 5.0, 4)));
  EXPECT_FALSE(sub.matches(trade(schema, "X", 5.0, 3)));
  EXPECT_FALSE(sub.matches(trade(schema, "X", 5.5, 4)));
}

TEST(Parser, DoubleEqualsAccepted) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "issue == \"IBM\"");
  EXPECT_TRUE(sub.matches(trade(schema, "IBM", 0.0, 0)));
}

TEST(Parser, BoolLiterals) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "urgent = true");
  EXPECT_TRUE(sub.matches(trade(schema, "A", 1.0, 1, true)));
  EXPECT_FALSE(sub.matches(trade(schema, "A", 1.0, 1, false)));
}

TEST(Parser, IntervalFolding) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "price > 100 & price <= 120");
  const auto& test = sub.test(1);
  EXPECT_EQ(test.kind, TestKind::kRange);
  ASSERT_TRUE(test.lo.has_value());
  ASSERT_TRUE(test.hi.has_value());
  EXPECT_DOUBLE_EQ(test.lo->as_double(), 100.0);
  EXPECT_DOUBLE_EQ(test.hi->as_double(), 120.0);
  EXPECT_FALSE(test.lo_inclusive);
  EXPECT_TRUE(test.hi_inclusive);
  EXPECT_TRUE(sub.matches(trade(schema, "A", 120.0, 0)));
  EXPECT_FALSE(sub.matches(trade(schema, "A", 100.0, 0)));
}

TEST(Parser, TighterBoundWins) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "volume < 100 & volume < 50");
  EXPECT_TRUE(sub.matches(trade(schema, "A", 0.0, 49)));
  EXPECT_FALSE(sub.matches(trade(schema, "A", 0.0, 50)));
}

TEST(Parser, ContradictoryRangeThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_subscription(schema, "price > 120 & price < 100"), std::invalid_argument);
}

TEST(Parser, ContradictoryEqualityThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_subscription(schema, "volume = 1 & volume = 2"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(schema, "volume = 5 & volume != 5"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(schema, "volume = 5 & volume > 10"), std::invalid_argument);
}

TEST(Parser, EqualityConsistentWithBoundsReduces) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "volume = 5 & volume < 10");
  EXPECT_EQ(sub.test(2).kind, TestKind::kEquals);
  EXPECT_TRUE(sub.matches(trade(schema, "A", 0.0, 5)));
}

TEST(Parser, EmptyPredicateIsMatchAll) {
  const auto schema = stock_schema();
  EXPECT_TRUE(parse_subscription(schema, "").matches(trade(schema, "Z", 9.0, 9)));
  EXPECT_TRUE(parse_subscription(schema, "all").matches(trade(schema, "Z", 9.0, 9)));
}

TEST(Parser, UnknownAttributeThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_subscription(schema, "ghost = 1"), std::invalid_argument);
}

TEST(Parser, TypeMismatchThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_subscription(schema, "issue = 42"), std::invalid_argument);
  EXPECT_THROW(parse_subscription(schema, "volume = \"x\""), std::invalid_argument);
  EXPECT_THROW(parse_subscription(schema, "volume = 1.5"), std::invalid_argument);
}

TEST(Parser, SyntaxErrors) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_subscription(schema, "issue"), ParseError);
  EXPECT_THROW(parse_subscription(schema, "issue = "), ParseError);
  EXPECT_THROW(parse_subscription(schema, "issue = \"unterminated"), ParseError);
  EXPECT_THROW(parse_subscription(schema, "price < 1 volume > 2"), ParseError);
  EXPECT_THROW(parse_subscription(schema, "price # 1"), ParseError);
}

TEST(Parser, NegativeNumbers) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "volume > -5");
  EXPECT_TRUE(sub.matches(trade(schema, "A", 0.0, -4)));
  EXPECT_FALSE(sub.matches(trade(schema, "A", 0.0, -5)));
}

TEST(Parser, ScientificNotationForDoubles) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "price < 1.2e2");
  EXPECT_TRUE(sub.matches(trade(schema, "A", 119.0, 0)));
  EXPECT_FALSE(sub.matches(trade(schema, "A", 121.0, 0)));
}

TEST(Parser, OuterParenthesesTolerated) {
  const auto schema = stock_schema();
  const auto sub = parse_subscription(schema, "(issue = \"IBM\" & volume > 1)");
  EXPECT_TRUE(sub.matches(trade(schema, "IBM", 0.0, 2)));
}

TEST(ParseEvent, RoundTrip) {
  const auto schema = stock_schema();
  const auto e = parse_event(schema, R"({issue: "IBM", price: 119.5, volume: 3000,
                                         urgent: false})");
  EXPECT_EQ(e.value(0).as_string(), "IBM");
  EXPECT_DOUBLE_EQ(e.value(1).as_double(), 119.5);
  EXPECT_EQ(e.value(2).as_int(), 3000);
  EXPECT_FALSE(e.value(3).as_bool());
}

TEST(ParseEvent, AttributesInAnyOrder) {
  const auto schema = stock_schema();
  const auto e =
      parse_event(schema, "{volume: 1, urgent: true, price: 2.0, issue: 'A'}");
  EXPECT_EQ(e.value(0).as_string(), "A");
  EXPECT_TRUE(e.value(3).as_bool());
}

TEST(ParseEvent, MissingAttributeThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_event(schema, "{issue: 'A'}"), std::invalid_argument);
}

TEST(ParseEvent, DuplicateAttributeThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_event(schema, "{issue: 'A', issue: 'B', price: 1.0, volume: 1, urgent: true}"),
               std::invalid_argument);
}

TEST(ParseEvent, IntLiteralForDoubleAttribute) {
  const auto schema = stock_schema();
  const auto e = parse_event(schema, "{issue: 'A', price: 5, volume: 1, urgent: false}");
  EXPECT_TRUE(e.value(1).is_double());
  EXPECT_DOUBLE_EQ(e.value(1).as_double(), 5.0);
}


TEST(ParseDisjunction, SingleArmEqualsPlainParse) {
  const auto schema = stock_schema();
  const auto subs = parse_disjunction(schema, "issue = \"IBM\" & price < 120");
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0] == parse_subscription(schema, "issue = \"IBM\" & price < 120"));
}

TEST(ParseDisjunction, PipeSplitsArms) {
  const auto schema = stock_schema();
  const auto subs = parse_disjunction(schema, "issue = \"IBM\" | volume > 50000");
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_TRUE(subs[0].matches(trade(schema, "IBM", 1.0, 1)));
  EXPECT_FALSE(subs[0].matches(trade(schema, "HP", 1.0, 1)));
  EXPECT_TRUE(subs[1].matches(trade(schema, "HP", 1.0, 60000)));
}

TEST(ParseDisjunction, DoublePipeAndOrKeyword) {
  const auto schema = stock_schema();
  EXPECT_EQ(parse_disjunction(schema, "price > 1 || price < 0").size(), 2u);
  EXPECT_EQ(parse_disjunction(schema, "price > 1 or volume > 2 OR urgent = true").size(), 3u);
}

TEST(ParseDisjunction, PipeInsideStringIsLiteral) {
  const auto schema = stock_schema();
  const auto subs = parse_disjunction(schema, "issue = \"A|B\"");
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_TRUE(subs[0].matches(trade(schema, "A|B", 1.0, 1)));
}

TEST(ParseDisjunction, OrInsideIdentifierNotSplit) {
  const auto schema = make_schema(
      "s", {Attribute{"order_id", AttributeType::kInt, {}}});
  const auto subs = parse_disjunction(schema, "order_id = 5");
  ASSERT_EQ(subs.size(), 1u);
}

TEST(ParseDisjunction, EmptyArmRejected) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_disjunction(schema, "price > 1 |"), ParseError);
  EXPECT_THROW(parse_disjunction(schema, "| price > 1"), ParseError);
  EXPECT_THROW(parse_disjunction(schema, "price > 1 | | volume > 2"), ParseError);
}

TEST(ParseDisjunction, ArmsValidatedIndependently) {
  const auto schema = stock_schema();
  EXPECT_THROW(parse_disjunction(schema, "price > 1 | ghost = 2"), std::invalid_argument);
}


TEST(Parser, StarFormsAreMatchAll) {
  const auto schema = stock_schema();
  EXPECT_TRUE(parse_subscription(schema, "*").matches(trade(schema, "Z", 9.0, 9)));
  EXPECT_TRUE(parse_subscription(schema, "(*)").matches(trade(schema, "Z", 9.0, 9)));
}

TEST(Parser, SubscriptionTextRoundTrips) {
  // to_text() emits predicate text the parser accepts, reproducing the
  // original subscription exactly — including two-sided ranges.
  const auto schema = stock_schema();
  const char* predicates[] = {
      "",
      "issue = \"IBM\"",
      "issue != 'HP' & volume >= 7",
      "price > 100 & price <= 120",
      "price >= 1.5 & price < 2.5 & urgent = true",
      "volume > -10 & volume < 10 & issue = \"A|B\"",
  };
  for (const char* text : predicates) {
    const Subscription original = parse_subscription(schema, text);
    const Subscription reparsed = parse_subscription(schema, original.to_text());
    EXPECT_TRUE(original == reparsed) << text << " -> " << original.to_text();
  }
}

TEST(Parser, RandomizedSubscriptionTextRoundTrips) {
  const auto schema = stock_schema();
  Rng rng(314159);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<AttributeTest> tests(4);
    if (rng.chance(0.6)) {
      tests[0] = rng.chance(0.8)
                     ? AttributeTest::equals(Value("S" + std::to_string(rng.below(20))))
                     : AttributeTest::not_equals(Value("S" + std::to_string(rng.below(20))));
    }
    if (rng.chance(0.6)) {
      const double lo = static_cast<double>(rng.between(-50, 50));
      if (rng.chance(0.5)) {
        tests[1] = AttributeTest::between(Value(lo), Value(lo + 10.0), rng.chance(0.5),
                                          rng.chance(0.5));
      } else {
        tests[1] = rng.chance(0.5) ? AttributeTest::greater_than(Value(lo), rng.chance(0.5))
                                   : AttributeTest::less_than(Value(lo), rng.chance(0.5));
      }
    }
    if (rng.chance(0.5)) {
      tests[2] = AttributeTest::equals(Value(static_cast<int>(rng.below(1000))));
    }
    if (rng.chance(0.3)) tests[3] = AttributeTest::equals(Value(rng.chance(0.5)));
    const Subscription original(schema, tests);
    const Subscription reparsed = parse_subscription(schema, original.to_text());
    ASSERT_TRUE(original == reparsed) << original.to_text();
  }
}

}  // namespace
}  // namespace gryphon
