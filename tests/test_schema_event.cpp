#include <gtest/gtest.h>

#include "event/event.h"
#include "event/schema.h"

namespace gryphon {
namespace {

SchemaPtr stock_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}}});
}

TEST(Schema, BasicProperties) {
  const auto schema = stock_schema();
  EXPECT_EQ(schema->name(), "trades");
  EXPECT_EQ(schema->attribute_count(), 3u);
  EXPECT_EQ(schema->attribute(0).name, "issue");
  EXPECT_EQ(schema->attribute(1).type, AttributeType::kDouble);
}

TEST(Schema, IndexLookup) {
  const auto schema = stock_schema();
  EXPECT_EQ(schema->index_of("volume"), std::size_t{2});
  EXPECT_EQ(schema->index_of("nope"), std::nullopt);
}

TEST(Schema, RejectsEmpty) {
  EXPECT_THROW(EventSchema("x", {}), std::invalid_argument);
}

TEST(Schema, RejectsDuplicateAttribute) {
  EXPECT_THROW(make_schema("x", {Attribute{"a", AttributeType::kInt, {}},
                                 Attribute{"a", AttributeType::kInt, {}}}),
               std::invalid_argument);
}

TEST(Schema, RejectsDomainTypeMismatch) {
  EXPECT_THROW(make_schema("x", {Attribute{"a", AttributeType::kInt, {Value("str")}}}),
               std::invalid_argument);
}

TEST(Schema, AcceptsChecksTypeAndDomain) {
  const auto schema = make_schema("x", {Attribute{"a", AttributeType::kInt, {Value(0), Value(1)}},
                                        Attribute{"b", AttributeType::kString, {}}});
  EXPECT_TRUE(schema->accepts(0, Value(1)));
  EXPECT_FALSE(schema->accepts(0, Value(2)));    // outside domain
  EXPECT_FALSE(schema->accepts(0, Value(1.0)));  // wrong type
  EXPECT_TRUE(schema->accepts(1, Value("anything")));
  EXPECT_FALSE(schema->accepts(9, Value(1)));  // bad index
}

TEST(Schema, SyntheticShape) {
  const auto schema = make_synthetic_schema(10, 5);
  EXPECT_EQ(schema->attribute_count(), 10u);
  EXPECT_EQ(schema->attribute(0).name, "a1");
  EXPECT_EQ(schema->attribute(9).name, "a10");
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(schema->attribute(i).domain.size(), 5u);
    EXPECT_TRUE(schema->accepts(i, Value(4)));
    EXPECT_FALSE(schema->accepts(i, Value(5)));
  }
}

TEST(Event, PositionalConstruction) {
  const auto schema = stock_schema();
  const Event e(schema, {Value("IBM"), Value(119.5), Value(3000)});
  EXPECT_TRUE(e.complete());
  EXPECT_EQ(e.value(0).as_string(), "IBM");
  EXPECT_DOUBLE_EQ(e.value(1).as_double(), 119.5);
  EXPECT_EQ(e.value(2).as_int(), 3000);
}

TEST(Event, ArityMismatchThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(Event(schema, {Value("IBM")}), std::invalid_argument);
}

TEST(Event, TypeMismatchThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(Event(schema, {Value(1), Value(1.0), Value(1)}), std::invalid_argument);
}

TEST(Event, IncrementalConstruction) {
  const auto schema = stock_schema();
  Event e(schema);
  EXPECT_FALSE(e.complete());
  e.set("issue", Value("HP"));
  e.set("price", Value(10.0));
  EXPECT_FALSE(e.complete());
  e.set(2, Value(500));
  EXPECT_TRUE(e.complete());
}

TEST(Event, SetRejectsBadValues) {
  const auto schema = stock_schema();
  Event e(schema);
  EXPECT_THROW(e.set("price", Value("not a number")), std::invalid_argument);
  EXPECT_THROW(e.set("ghost", Value(1)), std::invalid_argument);
  EXPECT_THROW(e.set(17, Value(1)), std::out_of_range);
}

TEST(Event, DomainEnforcedOnSet) {
  const auto schema = make_synthetic_schema(2, 3);
  Event e(schema);
  EXPECT_THROW(e.set(0, Value(3)), std::invalid_argument);
  e.set(0, Value(2));
  EXPECT_EQ(e.value(0).as_int(), 2);
}

TEST(Event, ToTextReadable) {
  const auto schema = stock_schema();
  const Event e(schema, {Value("IBM"), Value(119.0), Value(3000)});
  EXPECT_EQ(e.to_text(), "{issue: \"IBM\", price: 119, volume: 3000}");
}

TEST(Event, EqualityIsDeep) {
  const auto schema = stock_schema();
  const Event a(schema, {Value("A"), Value(1.0), Value(1)});
  const Event b(schema, {Value("A"), Value(1.0), Value(1)});
  const Event c(schema, {Value("B"), Value(1.0), Value(1)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace gryphon
