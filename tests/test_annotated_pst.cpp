// Trit annotation of the PST (paper Section 3.1).
#include "routing/annotated_pst.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "matching/attribute_order.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

class AnnotatedPstTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(2, 3);  // 2 attributes, values {0,1,2}
  std::unordered_map<SubscriptionId, LinkIndex> links_;

  SubscriptionLinkFn link_fn() {
    return [this](SubscriptionId id) { return links_.at(id); };
  }

  void add(Pst& tree, std::int64_t id, std::vector<int> values, int link) {
    links_[SubscriptionId{id}] = LinkIndex{link};
    tree.add(SubscriptionId{id}, sub_eq(schema_, std::move(values)));
  }

  std::string root_annotation(const Pst& tree) {
    AnnotatedPst ann(tree, 3, link_fn());
    std::string s;
    for (const Trit t : ann.annotation(tree.root())) s.push_back(to_char(t));
    return s;
  }
};

TEST_F(AnnotatedPstTest, LeafAnnotation) {
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, 0}, 0);
  add(tree, 2, {0, 0}, 2);  // same leaf, different link
  AnnotatedPst ann(tree, 3, link_fn());
  // Walk to the leaf: root -> eq 0 -> eq 0.
  const auto l1 = tree.eq_children(tree.root())[0].second;
  const auto leaf = tree.eq_children(l1)[0].second;
  ASSERT_TRUE(tree.is_leaf(leaf));
  std::string s;
  for (const Trit t : ann.annotation(leaf)) s.push_back(to_char(t));
  EXPECT_EQ(s, "YNY");
}

TEST_F(AnnotatedPstTest, UncoveredValuesForceMaybe) {
  // One subscription pinned to a1=0 on link 0: an event with a1 != 0
  // matches nothing, so the root must say Maybe for link 0 (not Yes).
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, -1}, 0);
  EXPECT_EQ(root_annotation(tree), "MNN");
}

TEST_F(AnnotatedPstTest, FullDomainCoverageGivesYes) {
  // Subscriptions on link 0 for every a1 value, all don't-care on a2: any
  // event matches some subscription on link 0 -> root annotation Yes.
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, -1}, 0);
  add(tree, 2, {1, -1}, 0);
  add(tree, 3, {2, -1}, 0);
  EXPECT_EQ(root_annotation(tree), "YNN");
}

TEST_F(AnnotatedPstTest, StarBranchParallelCombineDominates) {
  // A match-all subscription on link 1 guarantees delivery on link 1 no
  // matter what the value branches say.
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, 0}, 0);
  add(tree, 2, {-1, -1}, 1);
  EXPECT_EQ(root_annotation(tree), "MYN");
}

TEST_F(AnnotatedPstTest, AlternativeAcrossValueBranches) {
  // Link 0 subscribed under a1=0, link 1 under a1=1: from the root the
  // outcome depends on the test -> Maybe for both.
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, -1}, 0);
  add(tree, 2, {1, -1}, 1);
  EXPECT_EQ(root_annotation(tree), "MMN");
}

TEST_F(AnnotatedPstTest, StarOnlyChainIsAnnotationTransparent) {
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {-1, 2}, 1);
  AnnotatedPst ann(tree, 3, link_fn());
  const auto star = tree.star_child(tree.root());
  ASSERT_NE(star, Pst::kNoNode);
  EXPECT_TRUE(std::equal(ann.annotation(tree.root()).begin(), ann.annotation(tree.root()).end(),
                         ann.annotation(star).begin(), ann.annotation(star).end()));
}

TEST_F(AnnotatedPstTest, PaperFigure5Composition) {
  // Reconstruct the figure's situation at the root: value children whose
  // annotations alternative-combine to MYM, a star child with YYN, and a
  // final parallel combine to YYM. Domain {0,1,2} with a 2-branch ensures
  // full coverage (no implicit all-No).
  Pst tree(schema_, identity_order(schema_));
  // Child a1=0 should annotate MYY: link 0 Maybe (pinned a2), 1 Yes, 2 Yes.
  add(tree, 1, {0, 0}, 0);
  add(tree, 2, {0, -1}, 1);
  add(tree, 3, {0, -1}, 2);
  // Child a1=1 should annotate NYN.
  add(tree, 4, {1, -1}, 1);
  // Child a1=2 also NYN (keeps the domain covered, mirroring the figure's
  // two-alternative merge).
  add(tree, 5, {2, -1}, 1);
  // Star child annotates YYN.
  add(tree, 6, {-1, -1}, 0);
  add(tree, 7, {-1, -1}, 1);

  AnnotatedPst ann(tree, 3, link_fn());
  const auto a0 = tree.eq_children(tree.root())[0].second;
  const auto a1 = tree.eq_children(tree.root())[1].second;
  const auto star = tree.star_child(tree.root());
  const auto text = [&](Pst::NodeId n) {
    std::string s;
    for (const Trit t : ann.annotation(n)) s.push_back(to_char(t));
    return s;
  };
  EXPECT_EQ(text(a0), "MYY");
  EXPECT_EQ(text(a1), "NYN");
  EXPECT_EQ(text(star), "YYN");
  EXPECT_EQ(text(tree.root()), "YYM");
}

TEST_F(AnnotatedPstTest, RangeBranchesAnnotateConservatively) {
  // The paper's annotation covers equality-only trees; general branches are
  // handled here with the sound fallback: a range branch can contribute
  // Maybe or No at its parent, never Yes (the implicit all-No alternative
  // is always in its Alternative combine).
  Pst tree(schema_, identity_order(schema_));
  std::vector<AttributeTest> tests(2);
  tests[0] = AttributeTest::between(Value(0), Value(2));  // accepts the whole domain
  links_[SubscriptionId{1}] = LinkIndex{0};
  tree.add(SubscriptionId{1}, Subscription(schema_, tests));
  // Even though the range accepts every domain value, coverage is not
  // provable, so the root says Maybe — conservative, not wrong.
  EXPECT_EQ(root_annotation(tree), "MNN");

  // A match-all subscription still yields Yes through the star branch.
  links_[SubscriptionId{2}] = LinkIndex{1};
  AnnotatedPst ann(tree, 3, link_fn());
  ann.apply(tree.add(SubscriptionId{2}, sub_eq(schema_, {-1, -1})));
  std::string s;
  for (const Trit t : ann.annotation(tree.root())) s.push_back(to_char(t));
  EXPECT_EQ(s, "MYN");
  ann.check_consistency();
}

TEST_F(AnnotatedPstTest, IncrementalTracksMutations) {
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, 0}, 0);
  AnnotatedPst ann(tree, 3, link_fn());
  EXPECT_TRUE(ann.in_sync());

  links_[SubscriptionId{2}] = LinkIndex{1};
  const auto mutation = tree.add(SubscriptionId{2}, sub_eq(schema_, {-1, -1}));
  EXPECT_FALSE(ann.in_sync());
  ann.apply(mutation);
  EXPECT_TRUE(ann.in_sync());
  ann.check_consistency();

  const auto removal = tree.remove(SubscriptionId{1}, sub_eq(schema_, {0, 0}));
  ASSERT_TRUE(removal.has_value());
  ann.apply(*removal);
  ann.check_consistency();
}

TEST_F(AnnotatedPstTest, StaleAnnotationDetected) {
  Pst tree(schema_, identity_order(schema_));
  add(tree, 1, {0, 0}, 0);
  AnnotatedPst ann(tree, 3, link_fn());
  add(tree, 2, {1, 1}, 1);  // mutation not applied to ann
  EXPECT_FALSE(ann.in_sync());
}

TEST_F(AnnotatedPstTest, IncrementalMatchesRebuildUnderChurn) {
  Rng rng(123);
  const auto schema = make_synthetic_schema(5, 3);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  Pst tree(schema, identity_order(schema));
  std::unordered_map<SubscriptionId, LinkIndex> links;
  AnnotatedPst ann(tree, 4, [&](SubscriptionId id) { return links.at(id); });

  std::vector<std::pair<SubscriptionId, Subscription>> live;
  std::int64_t next_id = 0;
  for (int round = 0; round < 250; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const Subscription s = gen.generate(rng);
      const SubscriptionId id{next_id++};
      links[id] = LinkIndex{static_cast<int>(rng.below(4))};
      ann.apply(tree.add(id, s));
      live.emplace_back(id, s);
    } else {
      const std::size_t pick = rng.below(live.size());
      const auto mutation = tree.remove(live[pick].first, live[pick].second);
      ASSERT_TRUE(mutation.has_value());
      ann.apply(*mutation);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 25 == 0) ann.check_consistency();
  }
  ann.check_consistency();
}

TEST_F(AnnotatedPstTest, NullLinkFunctionRejected) {
  Pst tree(schema_, identity_order(schema_));
  EXPECT_THROW(AnnotatedPst(tree, 3, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace gryphon
