#include "broker/inproc_transport.h"

#include <gtest/gtest.h>

#include <vector>

namespace gryphon {
namespace {

struct Recorder : TransportHandler {
  std::vector<ConnId> connects;
  std::vector<std::pair<ConnId, std::vector<std::uint8_t>>> frames;
  std::vector<ConnId> disconnects;

  void on_connect(ConnId conn) override { connects.push_back(conn); }
  void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override {
    frames.emplace_back(conn, std::vector<std::uint8_t>(frame.begin(), frame.end()));
  }
  void on_disconnect(ConnId conn) override { disconnects.push_back(conn); }
};

TEST(InProcTransport, ConnectNotifiesCallee) {
  InProcNetwork net;
  Recorder a, b;
  net.create_endpoint("a")->set_handler(&a);
  net.create_endpoint("b")->set_handler(&b);
  const ConnId conn = net.connect("a", "b");
  EXPECT_GT(conn, 0);
  ASSERT_EQ(b.connects.size(), 1u);
  EXPECT_TRUE(a.connects.empty());
}

TEST(InProcTransport, FramesFlowBothWays) {
  InProcNetwork net;
  Recorder a, b;
  auto* ea = net.create_endpoint("a");
  auto* eb = net.create_endpoint("b");
  ea->set_handler(&a);
  eb->set_handler(&b);
  const ConnId a_conn = net.connect("a", "b");
  const ConnId b_conn = b.connects.at(0);

  ea->send(a_conn, {1, 2, 3});
  eb->send(b_conn, {9});
  EXPECT_EQ(net.pending(), 2u);
  EXPECT_EQ(net.pump(), 2u);
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(b.frames[0].second, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].second, (std::vector<std::uint8_t>{9}));
}

TEST(InProcTransport, FifoOrderPreserved) {
  InProcNetwork net;
  Recorder b;
  auto* ea = net.create_endpoint("a");
  net.create_endpoint("b")->set_handler(&b);
  const ConnId conn = net.connect("a", "b");
  for (std::uint8_t i = 0; i < 10; ++i) ea->send(conn, {i});
  net.pump();
  ASSERT_EQ(b.frames.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(b.frames[i].second[0], i);
}

TEST(InProcTransport, PumpSomeDeliversPartially) {
  InProcNetwork net;
  Recorder b;
  auto* ea = net.create_endpoint("a");
  net.create_endpoint("b")->set_handler(&b);
  const ConnId conn = net.connect("a", "b");
  for (std::uint8_t i = 0; i < 5; ++i) ea->send(conn, {i});
  EXPECT_EQ(net.pump_some(2), 2u);
  EXPECT_EQ(b.frames.size(), 2u);
  EXPECT_EQ(net.pending(), 3u);
}

TEST(InProcTransport, CascadingSendsDuringPumpAreDelivered) {
  // A handler that replies during on_frame: pump() must drain those too.
  struct Echo : TransportHandler {
    InProcEndpoint* self{nullptr};
    void on_connect(ConnId) override {}
    void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override {
      if (frame[0] < 3) {
        std::vector<std::uint8_t> next(frame.begin(), frame.end());
        ++next[0];
        self->send(conn, std::move(next));
      }
    }
    void on_disconnect(ConnId) override {}
  };
  InProcNetwork net;
  Echo a, b;
  auto* ea = net.create_endpoint("a");
  auto* eb = net.create_endpoint("b");
  a.self = ea;
  b.self = eb;
  ea->set_handler(&a);
  eb->set_handler(&b);
  const ConnId conn = net.connect("a", "b");
  ea->send(conn, {0});
  // 0 -> b replies 1 -> a replies 2 -> b replies 3 -> a stops.
  EXPECT_EQ(net.pump(), 4u);
  EXPECT_EQ(net.pending(), 0u);
}

TEST(InProcTransport, DropNotifiesBothSidesAndKillsQueuedFrames) {
  InProcNetwork net;
  Recorder a, b;
  auto* ea = net.create_endpoint("a");
  net.create_endpoint("b")->set_handler(&b);
  ea->set_handler(&a);
  const ConnId conn = net.connect("a", "b");
  ea->send(conn, {1});
  net.drop("a", conn);
  EXPECT_EQ(net.pump(), 0u);  // queued frame died with the connection
  EXPECT_EQ(a.disconnects.size(), 1u);
  EXPECT_EQ(b.disconnects.size(), 1u);
  EXPECT_TRUE(b.frames.empty());
}

TEST(InProcTransport, SendAfterCloseIsSilentNoOp) {
  InProcNetwork net;
  Recorder b;
  auto* ea = net.create_endpoint("a");
  net.create_endpoint("b")->set_handler(&b);
  const ConnId conn = net.connect("a", "b");
  ea->close(conn);
  ea->send(conn, {1});
  EXPECT_EQ(net.pump(), 0u);
  EXPECT_TRUE(b.frames.empty());
}

TEST(InProcTransport, ReconnectCreatesFreshConnection) {
  InProcNetwork net;
  Recorder a, b;
  auto* ea = net.create_endpoint("a");
  net.create_endpoint("b")->set_handler(&b);
  ea->set_handler(&a);
  const ConnId first = net.connect("a", "b");
  net.drop("a", first);
  const ConnId second = net.connect("a", "b");
  EXPECT_NE(first, second);
  ea->send(second, {42});
  net.pump();
  ASSERT_EQ(b.frames.size(), 1u);
}

TEST(InProcTransport, UnknownEndpointThrows) {
  InProcNetwork net;
  net.create_endpoint("a");
  EXPECT_THROW(net.connect("a", "ghost"), std::invalid_argument);
  EXPECT_THROW(net.drop("ghost", 1), std::invalid_argument);
}

TEST(InProcTransport, EndpointNamesAreStable) {
  InProcNetwork net;
  auto* first = net.create_endpoint("x");
  auto* again = net.create_endpoint("x");
  EXPECT_EQ(first, again);
  EXPECT_EQ(first->name(), "x");
}

}  // namespace
}  // namespace gryphon
