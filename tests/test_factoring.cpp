// The factoring optimization (paper Section 2.1): index on the leading
// attributes, replicate don't-care subscriptions across buckets.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "matching/pst_matcher.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

TEST(FactoringIndex, EventKeyPicksFactoredValues) {
  const auto schema = make_synthetic_schema(4, 3);
  FactoringIndex index(schema, {0, 1});
  const Event e(schema, {Value(2), Value(1), Value(0), Value(0)});
  EXPECT_EQ(index.event_key(e), (FactoringIndex::Key{Value(2), Value(1)}));
}

TEST(FactoringIndex, PinnedSubscriptionHasOneKey) {
  const auto schema = make_synthetic_schema(4, 3);
  FactoringIndex index(schema, {0, 1});
  std::vector<AttributeTest> tests(4);
  tests[0] = AttributeTest::equals(Value(1));
  tests[1] = AttributeTest::equals(Value(2));
  const auto keys = index.subscription_keys(Subscription(schema, tests));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (FactoringIndex::Key{Value(1), Value(2)}));
}

TEST(FactoringIndex, DontCareReplicatesAcrossDomain) {
  const auto schema = make_synthetic_schema(4, 3);
  FactoringIndex index(schema, {0, 1});
  std::vector<AttributeTest> tests(4);
  tests[0] = AttributeTest::equals(Value(1));
  // a2 is don't-care: replicate over its 3 domain values.
  EXPECT_EQ(index.subscription_keys(Subscription(schema, tests)).size(), 3u);
  // Both factored attributes don't-care: full cartesian product.
  EXPECT_EQ(index.subscription_keys(Subscription::match_all(schema)).size(), 9u);
}

TEST(FactoringIndex, RangeTestEnumeratesMatchingValues) {
  const auto schema = make_synthetic_schema(4, 3);
  FactoringIndex index(schema, {0});
  std::vector<AttributeTest> tests(4);
  tests[0] = AttributeTest::greater_than(Value(0));  // accepts 1, 2
  const auto keys = index.subscription_keys(Subscription(schema, tests));
  EXPECT_EQ(keys.size(), 2u);
}

TEST(FactoringIndex, RequiresFiniteDomain) {
  const auto schema = make_schema("s", {Attribute{"open", AttributeType::kString, {}}});
  EXPECT_THROW(FactoringIndex(schema, {0}), std::invalid_argument);
}

TEST(PstMatcherFactoring, ProbeCostDropsWithFactoring) {
  const auto schema = make_synthetic_schema(10, 5);
  Rng rng(11);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  EventGenerator events(schema);

  PstMatcherOptions flat_options;
  PstMatcherOptions factored_options;
  factored_options.factoring_levels = 2;
  PstMatcher flat(schema, flat_options);
  PstMatcher factored(schema, factored_options);
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto s = gen.generate(rng);
    flat.add(SubscriptionId{i}, s);
    factored.add(SubscriptionId{i}, s);
  }

  MatchStats flat_stats, factored_stats;
  std::vector<SubscriptionId> a, b;
  for (int i = 0; i < 100; ++i) {
    const Event e = events.generate(rng);
    a.clear();
    b.clear();
    flat.match_into(e, a, &flat_stats);
    factored.match_into(e, b, &factored_stats);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b);
  }
  EXPECT_LT(factored_stats.nodes_visited, flat_stats.nodes_visited);
}

TEST(PstMatcherFactoring, BucketTreesReportedOnAdd) {
  const auto schema = make_synthetic_schema(3, 2);
  PstMatcherOptions options;
  options.factoring_levels = 1;
  PstMatcher matcher(schema, options);

  std::vector<AttributeTest> pinned(3);
  pinned[0] = AttributeTest::equals(Value(0));
  auto touched = matcher.add_with_result(SubscriptionId{1}, Subscription(schema, pinned));
  ASSERT_EQ(touched.size(), 1u);
  EXPECT_TRUE(touched[0].tree_created);
  EXPECT_EQ(matcher.tree_count(), 1u);

  // A don't-care subscription reuses bucket 0 and creates bucket 1.
  auto touched2 = matcher.add_with_result(SubscriptionId{2}, Subscription::match_all(schema));
  ASSERT_EQ(touched2.size(), 2u);
  EXPECT_EQ(matcher.tree_count(), 2u);
  const int created = static_cast<int>(touched2[0].tree_created) +
                      static_cast<int>(touched2[1].tree_created);
  EXPECT_EQ(created, 1);
}

TEST(PstMatcherFactoring, EventInEmptyBucketMatchesNothing) {
  const auto schema = make_synthetic_schema(3, 2);
  PstMatcherOptions options;
  options.factoring_levels = 1;
  PstMatcher matcher(schema, options);
  std::vector<AttributeTest> pinned(3);
  pinned[0] = AttributeTest::equals(Value(0));
  matcher.add(SubscriptionId{1}, Subscription(schema, pinned));

  EXPECT_EQ(matcher.tree_for_event(Event(schema, {Value(1), Value(0), Value(0)})), nullptr);
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(1), Value(0), Value(0)}), out);
  EXPECT_TRUE(out.empty());
}

TEST(PstMatcherFactoring, RemoveCleansAllReplicas) {
  const auto schema = make_synthetic_schema(3, 3);
  PstMatcherOptions options;
  options.factoring_levels = 2;
  PstMatcher matcher(schema, options);
  matcher.add(SubscriptionId{1}, Subscription::match_all(schema));
  EXPECT_EQ(matcher.tree_count(), 9u);
  const auto touched = matcher.remove_with_result(SubscriptionId{1});
  EXPECT_EQ(touched.size(), 9u);
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(0), Value(1), Value(2)}), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(matcher.subscription_count(), 0u);
}

TEST(PstMatcherFactoring, FactoringLevelsBounds) {
  const auto schema = make_synthetic_schema(3, 3);
  PstMatcherOptions options;
  options.factoring_levels = 4;
  EXPECT_THROW(PstMatcher(schema, options), std::invalid_argument);
}

TEST(PstMatcherFactoring, FullyFactoredTreeStillMatches) {
  // factoring_levels == attribute_count: the residual trees are pure leaf
  // buckets (order is empty).
  const auto schema = make_synthetic_schema(2, 2);
  PstMatcherOptions options;
  options.factoring_levels = 2;
  PstMatcher matcher(schema, options);
  std::vector<AttributeTest> tests(2);
  tests[0] = AttributeTest::equals(Value(1));
  matcher.add(SubscriptionId{5}, Subscription(schema, tests));
  std::vector<SubscriptionId> out;
  matcher.match_into(Event(schema, {Value(1), Value(0)}), out);
  EXPECT_EQ(out, (std::vector<SubscriptionId>{SubscriptionId{5}}));
  out.clear();
  matcher.match_into(Event(schema, {Value(0), Value(0)}), out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace gryphon
