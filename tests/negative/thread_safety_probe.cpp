// Negative-compilation probe for the thread-safety gate (tests/CMakeLists
// runs this through try_compile twice on Clang): without TS_VIOLATE it must
// compile under -Werror=thread-safety; with TS_VIOLATE it reads a
// GUARDED_BY member without holding the lock and must be *rejected*. A
// probe that compiles both ways means the analysis is silently off — the
// configure step fails hard in that case, so the contract cannot rot
// unnoticed.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void increment() {
    gryphon::MutexLock lock(mutex_);
    ++value_;
  }

  int read() {
#if defined(TS_VIOLATE)
    return value_;  // unguarded: -Werror=thread-safety must reject this
#else
    gryphon::MutexLock lock(mutex_);
    return value_;
#endif
  }

 private:
  gryphon::Mutex mutex_;
  int value_ GUARDED_BY(mutex_){0};
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.read() == 1 ? 0 : 1;
}
