// The parallel search graph: hash-consed DAG snapshot of the PST.
#include "matching/psg.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "matching/attribute_order.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

Event ev(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<Value> v;
  for (const int x : values) v.emplace_back(x);
  return Event(schema, std::move(v));
}

std::vector<SubscriptionId> sorted_match(const FrozenPsg& psg, const Event& e,
                                         MatchStats* stats = nullptr) {
  std::vector<SubscriptionId> out;
  psg.match(e, out, stats);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FrozenPsg, EmptyTreeMatchesNothing) {
  const auto schema = make_synthetic_schema(3, 3);
  Pst tree(schema, identity_order(schema));
  FrozenPsg psg(tree);
  EXPECT_TRUE(sorted_match(psg, ev(schema, {0, 0, 0})).empty());
  EXPECT_EQ(psg.subscription_count(), 0u);
}

TEST(FrozenPsg, SharedSuffixesMerge) {
  // Two subscriptions differing only at the first attribute: their suffix
  // subgraphs (a2=2, then don't-cares) are isomorphic and must merge.
  const auto schema = make_synthetic_schema(4, 3);
  Pst tree(schema, identity_order(schema));
  // Distinct ids prevent leaf merging; use identical leaf content instead:
  // the shared structure here is the star chains between tested levels.
  tree.add(SubscriptionId{1}, sub_eq(schema, {0, 2, -1, -1}));
  tree.add(SubscriptionId{2}, sub_eq(schema, {1, 2, -1, -1}));
  FrozenPsg psg(tree);
  EXPECT_EQ(psg.source_node_count(), tree.live_node_count());
  // Tree: root + 2 value nodes + 2 (a2=2) nodes + 2 star chains of 2 + 2
  // leaves; the leaves differ (different ids) but... they do differ, so
  // only interior structure can merge. Verify strict reduction.
  EXPECT_LT(psg.node_count(), psg.source_node_count());
}

TEST(FrozenPsg, IdenticalLeavesNeverCarryDifferentIds) {
  // Every id lives at exactly one tree leaf, so merged leaves are safe and
  // no match can report duplicates.
  const auto schema = make_synthetic_schema(3, 3);
  Pst tree(schema, identity_order(schema));
  for (int a = 0; a < 3; ++a) {
    tree.add(SubscriptionId{a}, sub_eq(schema, {a, 1, -1}));
  }
  FrozenPsg psg(tree);
  const auto got = sorted_match(psg, ev(schema, {2, 1, 0}));
  EXPECT_EQ(got, (std::vector<SubscriptionId>{SubscriptionId{2}}));
}

TEST(FrozenPsg, EquivalentToTreeOnRandomWorkloads) {
  const auto schema = make_synthetic_schema(8, 4);
  Rng rng(2027);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.8, 1.0});
  Pst tree(schema, identity_order(schema));
  for (std::int64_t i = 0; i < 3000; ++i) {
    tree.add(SubscriptionId{i}, gen.generate(rng));
  }
  FrozenPsg psg(tree);
  EXPECT_EQ(psg.subscription_count(), 3000u);
  EXPECT_LE(psg.node_count(), psg.source_node_count());

  EventGenerator events(schema);
  std::vector<SubscriptionId> tree_out;
  for (int i = 0; i < 200; ++i) {
    const Event e = events.generate(rng);
    tree_out.clear();
    tree.match(e, tree_out);
    std::sort(tree_out.begin(), tree_out.end());
    const auto psg_out = sorted_match(psg, e);
    ASSERT_EQ(psg_out, tree_out) << "event " << e.to_text();
    // No duplicates even with shared nodes.
    EXPECT_TRUE(std::adjacent_find(psg_out.begin(), psg_out.end()) == psg_out.end());
  }
}

TEST(FrozenPsg, MemoizationNeverCostsMoreStepsThanTree) {
  const auto schema = make_synthetic_schema(10, 3);
  Rng rng(11);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.95, 0.85, 1.0});
  Pst tree(schema, identity_order(schema));
  for (std::int64_t i = 0; i < 5000; ++i) tree.add(SubscriptionId{i}, gen.generate(rng));
  FrozenPsg psg(tree);

  EventGenerator events(schema);
  MatchStats tree_stats, psg_stats;
  std::vector<SubscriptionId> scratch;
  for (int i = 0; i < 300; ++i) {
    const Event e = events.generate(rng);
    scratch.clear();
    tree.match(e, scratch, &tree_stats);
    scratch.clear();
    psg.match(e, scratch, &psg_stats);
  }
  EXPECT_LE(psg_stats.nodes_visited, tree_stats.nodes_visited);
  EXPECT_LT(psg.node_count(), tree.live_node_count());
}

TEST(FrozenPsg, RangeBranchesSupported) {
  const auto schema = make_synthetic_schema(3, 4);
  Pst tree(schema, identity_order(schema));
  std::vector<AttributeTest> tests(3);
  tests[0] = AttributeTest::between(Value(1), Value(2));
  tree.add(SubscriptionId{9}, Subscription(schema, tests));
  FrozenPsg psg(tree);
  EXPECT_EQ(sorted_match(psg, ev(schema, {1, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{9}}));
  EXPECT_TRUE(sorted_match(psg, ev(schema, {3, 0, 0})).empty());
}

TEST(FrozenPsg, SnapshotIsImmutableUnderSourceMutation) {
  const auto schema = make_synthetic_schema(3, 3);
  Pst tree(schema, identity_order(schema));
  tree.add(SubscriptionId{1}, sub_eq(schema, {0, -1, -1}));
  FrozenPsg psg(tree);
  tree.add(SubscriptionId{2}, sub_eq(schema, {0, -1, -1}));
  tree.remove(SubscriptionId{1}, sub_eq(schema, {0, -1, -1}));
  // The snapshot still answers from its own state.
  EXPECT_EQ(sorted_match(psg, ev(schema, {0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
}

TEST(FrozenPsg, ManyMatchesExerciseStampReuse) {
  const auto schema = make_synthetic_schema(4, 2);
  Pst tree(schema, identity_order(schema));
  tree.add(SubscriptionId{1}, sub_eq(schema, {-1, -1, -1, -1}));
  FrozenPsg psg(tree);
  std::vector<SubscriptionId> out;
  for (int i = 0; i < 10000; ++i) {
    out.clear();
    psg.match(ev(schema, {i % 2, 0, 1, 0}), out);
    ASSERT_EQ(out.size(), 1u);
  }
}

}  // namespace
}  // namespace gryphon
