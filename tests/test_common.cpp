#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/ids.h"
#include "common/logging.h"
#include "common/time.h"

namespace gryphon {
namespace {

TEST(TypedId, DefaultIsInvalid) {
  BrokerId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(BrokerId{0}.valid());
  EXPECT_TRUE(BrokerId{7}.valid());
  EXPECT_FALSE(BrokerId{-2}.valid());
}

TEST(TypedId, ComparisonAndOrdering) {
  EXPECT_EQ(ClientId{3}, ClientId{3});
  EXPECT_NE(ClientId{3}, ClientId{4});
  EXPECT_LT(ClientId{3}, ClientId{4});
  EXPECT_LE(ClientId{3}, ClientId{3});
  EXPECT_GT(ClientId{5}, ClientId{4});
  EXPECT_GE(ClientId{5}, ClientId{5});
}

TEST(TypedId, Hashable) {
  std::unordered_set<SubscriptionId> set;
  set.insert(SubscriptionId{1});
  set.insert(SubscriptionId{1});
  set.insert(SubscriptionId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TypedId, Printable) {
  std::ostringstream os;
  os << BrokerId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(VirtualTime, RoundTripsAndPaperConstants) {
  // 1 tick ~= 12 microseconds (Section 4.1).
  EXPECT_DOUBLE_EQ(kMicrosPerTick, 12.0);
  EXPECT_EQ(ticks_from_millis(65.0), 5417);   // intercontinental hop
  EXPECT_EQ(ticks_from_millis(25.0), 2083);   // root -> interior
  EXPECT_EQ(ticks_from_millis(10.0), 833);    // interior -> leaf
  EXPECT_EQ(ticks_from_millis(1.0), 83);      // client link
  EXPECT_NEAR(ticks_to_seconds(ticks_from_seconds(3.5)), 3.5, 1e-4);
}

TEST(Logging, ThresholdFilters) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must be no-ops (nothing observable to assert beyond not crashing,
  // but the macro's short-circuit is the behaviour under test).
  GRYPHON_DEBUG("test") << "suppressed " << 1;
  GRYPHON_INFO("test") << "suppressed " << 2;
  GRYPHON_WARN("test") << "suppressed " << 3;
  set_log_level(LogLevel::kOff);
  GRYPHON_ERROR("test") << "suppressed " << 4;
  set_log_level(original);
}

TEST(Logging, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kError);
  EXPECT_LT(LogLevel::kError, LogLevel::kOff);
}

}  // namespace
}  // namespace gryphon
