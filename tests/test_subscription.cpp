#include "event/subscription.h"

#include <gtest/gtest.h>

namespace gryphon {
namespace {

SchemaPtr stock_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}}});
}

Event trade(const SchemaPtr& schema, const char* issue, double price, int volume) {
  return Event(schema, {Value(issue), Value(price), Value(volume)});
}

TEST(AttributeTest, DontCareAcceptsEverything) {
  const auto t = AttributeTest::dont_care();
  EXPECT_TRUE(t.accepts(Value(1)));
  EXPECT_TRUE(t.accepts(Value("x")));
  EXPECT_TRUE(t.is_dont_care());
}

TEST(AttributeTest, Equals) {
  const auto t = AttributeTest::equals(Value(5));
  EXPECT_TRUE(t.accepts(Value(5)));
  EXPECT_FALSE(t.accepts(Value(6)));
}

TEST(AttributeTest, NotEquals) {
  const auto t = AttributeTest::not_equals(Value("IBM"));
  EXPECT_FALSE(t.accepts(Value("IBM")));
  EXPECT_TRUE(t.accepts(Value("HP")));
}

TEST(AttributeTest, OpenRanges) {
  const auto lt = AttributeTest::less_than(Value(120.0));
  EXPECT_TRUE(lt.accepts(Value(119.9)));
  EXPECT_FALSE(lt.accepts(Value(120.0)));
  EXPECT_FALSE(lt.accepts(Value(121.0)));

  const auto le = AttributeTest::less_than(Value(120.0), /*inclusive=*/true);
  EXPECT_TRUE(le.accepts(Value(120.0)));

  const auto gt = AttributeTest::greater_than(Value(1000));
  EXPECT_FALSE(gt.accepts(Value(1000)));
  EXPECT_TRUE(gt.accepts(Value(1001)));

  const auto ge = AttributeTest::greater_than(Value(1000), /*inclusive=*/true);
  EXPECT_TRUE(ge.accepts(Value(1000)));
}

TEST(AttributeTest, ClosedRange) {
  const auto t = AttributeTest::between(Value(10), Value(20));
  EXPECT_TRUE(t.accepts(Value(10)));
  EXPECT_TRUE(t.accepts(Value(15)));
  EXPECT_TRUE(t.accepts(Value(20)));
  EXPECT_FALSE(t.accepts(Value(9)));
  EXPECT_FALSE(t.accepts(Value(21)));

  const auto open = AttributeTest::between(Value(10), Value(20), false, false);
  EXPECT_FALSE(open.accepts(Value(10)));
  EXPECT_FALSE(open.accepts(Value(20)));
  EXPECT_TRUE(open.accepts(Value(11)));
}

TEST(AttributeTest, StructuralEquality) {
  EXPECT_EQ(AttributeTest::equals(Value(1)), AttributeTest::equals(Value(1)));
  EXPECT_FALSE(AttributeTest::equals(Value(1)) == AttributeTest::equals(Value(2)));
  EXPECT_FALSE(AttributeTest::equals(Value(1)) == AttributeTest::not_equals(Value(1)));
  EXPECT_EQ(AttributeTest::between(Value(1), Value(2)), AttributeTest::between(Value(1), Value(2)));
  EXPECT_FALSE(AttributeTest::between(Value(1), Value(2)) ==
               AttributeTest::between(Value(1), Value(2), false));
  EXPECT_EQ(AttributeTest::dont_care(), AttributeTest::dont_care());
}

TEST(Subscription, PaperExamplePredicate) {
  // (issue="IBM" & price < 120 & volume > 1000), from the paper's Section 1.
  const auto schema = stock_schema();
  const Subscription sub(schema, {AttributeTest::equals(Value("IBM")),
                                  AttributeTest::less_than(Value(120.0)),
                                  AttributeTest::greater_than(Value(1000))});
  EXPECT_TRUE(sub.matches(trade(schema, "IBM", 119.0, 3000)));
  EXPECT_FALSE(sub.matches(trade(schema, "HP", 119.0, 3000)));
  EXPECT_FALSE(sub.matches(trade(schema, "IBM", 120.0, 3000)));
  EXPECT_FALSE(sub.matches(trade(schema, "IBM", 119.0, 1000)));
  EXPECT_EQ(sub.specific_test_count(), 3u);
  EXPECT_FALSE(sub.equality_only());
}

TEST(Subscription, MatchAll) {
  const auto schema = stock_schema();
  const auto sub = Subscription::match_all(schema);
  EXPECT_TRUE(sub.matches(trade(schema, "X", 0.0, 0)));
  EXPECT_EQ(sub.specific_test_count(), 0u);
  EXPECT_TRUE(sub.equality_only());
  EXPECT_EQ(sub.to_text(), "(*)");
}

TEST(Subscription, EqualityOnlyDetection) {
  const auto schema = stock_schema();
  const Subscription eq_only(schema, {AttributeTest::equals(Value("IBM")),
                                      AttributeTest::dont_care(), AttributeTest::dont_care()});
  EXPECT_TRUE(eq_only.equality_only());
  const Subscription with_range(schema, {AttributeTest::dont_care(),
                                         AttributeTest::less_than(Value(1.0)),
                                         AttributeTest::dont_care()});
  EXPECT_FALSE(with_range.equality_only());
}

TEST(Subscription, ArityMismatchThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(Subscription(schema, {AttributeTest::dont_care()}), std::invalid_argument);
}

TEST(Subscription, OperandTypeMismatchThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(Subscription(schema, {AttributeTest::equals(Value(1)),  // issue is string
                                     AttributeTest::dont_care(), AttributeTest::dont_care()}),
               std::invalid_argument);
}

TEST(Subscription, EmptyRangeThrows) {
  const auto schema = stock_schema();
  EXPECT_THROW(Subscription(schema, {AttributeTest::dont_care(),
                                     AttributeTest::between(Value(20.0), Value(10.0)),
                                     AttributeTest::dont_care()}),
               std::invalid_argument);
}

TEST(Subscription, UnboundedRangeThrows) {
  const auto schema = stock_schema();
  AttributeTest t;
  t.kind = TestKind::kRange;  // no bounds at all
  EXPECT_THROW(Subscription(schema, {AttributeTest::dont_care(), t, AttributeTest::dont_care()}),
               std::invalid_argument);
}

TEST(Subscription, RangeOnBoolThrows) {
  const auto schema = make_schema("s", {Attribute{"flag", AttributeType::kBool, {}}});
  EXPECT_THROW(Subscription(schema, {AttributeTest::greater_than(Value(true))}),
               std::invalid_argument);
}

TEST(Subscription, ToTextRendersTests) {
  const auto schema = stock_schema();
  const Subscription sub(schema, {AttributeTest::equals(Value("IBM")),
                                  AttributeTest::less_than(Value(120.0)),
                                  AttributeTest::dont_care()});
  EXPECT_EQ(sub.to_text(), "(issue = \"IBM\" & price < 120)");
}

TEST(Subscription, DomainEnforced) {
  const auto schema = make_synthetic_schema(2, 3);
  EXPECT_THROW(Subscription(schema, {AttributeTest::equals(Value(7)), AttributeTest::dont_care()}),
               std::invalid_argument);
}

}  // namespace
}  // namespace gryphon
