#include "matching/pst.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "matching/attribute_order.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

std::vector<SubscriptionId> sorted_match(const Pst& tree, const Event& e,
                                         MatchStats* stats = nullptr) {
  std::vector<SubscriptionId> out;
  tree.match(e, out, stats);
  std::sort(out.begin(), out.end());
  return out;
}

Subscription sub_eq(const SchemaPtr& schema, std::vector<int> values /* -1 = don't care */) {
  std::vector<AttributeTest> tests;
  for (const int v : values) {
    tests.push_back(v < 0 ? AttributeTest::dont_care() : AttributeTest::equals(Value(v)));
  }
  return Subscription(schema, std::move(tests));
}

Event ev(const SchemaPtr& schema, std::vector<int> values) {
  std::vector<Value> v;
  for (const int x : values) v.emplace_back(x);
  return Event(schema, std::move(v));
}

class PstTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(5, 4);
};

TEST_F(PstTest, EmptyTreeMatchesNothing) {
  Pst tree(schema_, identity_order(schema_));
  EXPECT_TRUE(sorted_match(tree, ev(schema_, {0, 0, 0, 0, 0})).empty());
  tree.check_invariants();
}

TEST_F(PstTest, SingleSubscriptionPath) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, -1, 3, -1, 2}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 0, 3, 0, 2})),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
  EXPECT_TRUE(sorted_match(tree, ev(schema_, {1, 0, 3, 0, 1})).empty());
  EXPECT_TRUE(sorted_match(tree, ev(schema_, {2, 0, 3, 0, 2})).empty());
  tree.check_invariants();
}

TEST_F(PstTest, ParallelSearchFollowsValueAndStar) {
  // Paper Section 2: at each node the matching value branch AND the `*`
  // branch are followed — 0, 1, or 2 successors with equality tests.
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 2, -1, -1, -1}));
  tree.add(SubscriptionId{2}, sub_eq(schema_, {-1, 2, -1, -1, -1}));
  tree.add(SubscriptionId{3}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  tree.add(SubscriptionId{4}, sub_eq(schema_, {-1, -1, -1, -1, -1}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 2, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{2}, SubscriptionId{3},
                                         SubscriptionId{4}}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 3, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{3}, SubscriptionId{4}}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {0, 2, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{2}, SubscriptionId{4}}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {0, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{4}}));
}

TEST_F(PstTest, SharedPrefixesShareNodes) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 2, 3, -1, -1}));
  const std::size_t nodes_after_first = tree.live_node_count();
  tree.add(SubscriptionId{2}, sub_eq(schema_, {1, 2, 0, -1, -1}));
  // Only the suffix below the shared (1, 2) prefix is new: levels 3..5.
  EXPECT_EQ(tree.live_node_count(), nodes_after_first + 3);
  tree.check_invariants();
}

TEST_F(PstTest, MultipleSubscribersAtOneLeaf) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  tree.add(SubscriptionId{2}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{2}}));
  EXPECT_EQ(tree.subscription_count(), 2u);
}

TEST_F(PstTest, DuplicateIdAtLeafThrows) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  EXPECT_THROW(tree.add(SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1, -1})),
               std::invalid_argument);
}

TEST_F(PstTest, RemoveRestoresMatchSet) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 2, -1, -1, -1}));
  tree.add(SubscriptionId{2}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  ASSERT_TRUE(tree.remove(SubscriptionId{1}, sub_eq(schema_, {1, 2, -1, -1, -1})).has_value());
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 2, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{2}}));
  tree.check_invariants();
}

TEST_F(PstTest, RemovePrunesEmptyPaths) {
  Pst tree(schema_, identity_order(schema_));
  const std::size_t empty_nodes = tree.live_node_count();
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 2, 3, 0, 1}));
  const auto mutation = tree.remove(SubscriptionId{1}, sub_eq(schema_, {1, 2, 3, 0, 1}));
  ASSERT_TRUE(mutation.has_value());
  EXPECT_EQ(tree.live_node_count(), empty_nodes);
  EXPECT_EQ(mutation->leaf, Pst::kNoNode);       // the leaf itself was pruned
  EXPECT_EQ(mutation->start, tree.root());       // pruning reached the root
  EXPECT_EQ(mutation->freed.size(), 5u);
  tree.check_invariants();
}

TEST_F(PstTest, RemoveKeepsSharedPrefix) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 2, 3, -1, -1}));
  tree.add(SubscriptionId{2}, sub_eq(schema_, {1, 2, 0, -1, -1}));
  tree.remove(SubscriptionId{1}, sub_eq(schema_, {1, 2, 3, -1, -1}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 2, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{2}}));
  tree.check_invariants();
}

TEST_F(PstTest, RemoveUnknownReturnsNullopt) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, -1, -1, -1, -1}));
  EXPECT_FALSE(tree.remove(SubscriptionId{2}, sub_eq(schema_, {1, -1, -1, -1, -1})).has_value());
  EXPECT_FALSE(tree.remove(SubscriptionId{1}, sub_eq(schema_, {2, -1, -1, -1, -1})).has_value());
}

TEST_F(PstTest, ArenaSlotsAreReused) {
  Pst tree(schema_, identity_order(schema_));
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 1, 1, 1, 1}));
  const std::size_t slots = tree.node_slot_count();
  tree.remove(SubscriptionId{1}, sub_eq(schema_, {1, 1, 1, 1, 1}));
  tree.add(SubscriptionId{2}, sub_eq(schema_, {2, 2, 2, 2, 2}));
  EXPECT_EQ(tree.node_slot_count(), slots);  // free list satisfied the add
  tree.check_invariants();
}

TEST_F(PstTest, RangeBranches) {
  Pst tree(schema_, identity_order(schema_));
  std::vector<AttributeTest> tests(5);
  tests[0] = AttributeTest::between(Value(1), Value(3));
  tree.add(SubscriptionId{1}, Subscription(schema_, tests));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {2, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
  EXPECT_TRUE(sorted_match(tree, ev(schema_, {0, 0, 0, 0, 0})).empty());
  tree.check_invariants();
}

TEST_F(PstTest, OverlappingRangesBothMatch) {
  Pst tree(schema_, identity_order(schema_));
  std::vector<AttributeTest> t1(5), t2(5);
  t1[0] = AttributeTest::between(Value(0), Value(2));
  t2[0] = AttributeTest::between(Value(1), Value(3));
  tree.add(SubscriptionId{1}, Subscription(schema_, t1));
  tree.add(SubscriptionId{2}, Subscription(schema_, t2));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {1, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}, SubscriptionId{2}}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {0, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
  EXPECT_EQ(sorted_match(tree, ev(schema_, {3, 0, 0, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{2}}));
}

TEST_F(PstTest, IdenticalRangeTestsShareBranch) {
  Pst tree(schema_, identity_order(schema_));
  std::vector<AttributeTest> t1(5), t2(5);
  t1[0] = AttributeTest::between(Value(0), Value(2));
  t2[0] = AttributeTest::between(Value(0), Value(2));
  t2[1] = AttributeTest::equals(Value(1));
  tree.add(SubscriptionId{1}, Subscription(schema_, t1));
  const std::size_t after_first = tree.live_node_count();
  tree.add(SubscriptionId{2}, Subscription(schema_, t2));
  // Shares the range branch at level 0; adds a new path below it.
  EXPECT_EQ(tree.live_node_count(), after_first + 4);
}

TEST_F(PstTest, CustomAttributeOrder) {
  // Test attribute 4 at the root.
  Pst tree(schema_, {4, 0, 1, 2, 3});
  tree.add(SubscriptionId{1}, sub_eq(schema_, {-1, -1, -1, -1, 3}));
  MatchStats stats;
  EXPECT_EQ(sorted_match(tree, ev(schema_, {0, 0, 0, 0, 3}), &stats),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
  // With the selective attribute at the root and trivial-test elimination,
  // the search is: root -> (skip star chain) -> leaf = 2 visited nodes.
  EXPECT_EQ(stats.nodes_visited, 2u);
}

TEST_F(PstTest, TrivialTestEliminationReducesSteps) {
  Pst::Options no_tte;
  no_tte.trivial_test_elimination = false;
  Pst plain(schema_, identity_order(schema_), no_tte);
  Pst optimized(schema_, identity_order(schema_));
  const auto sub = sub_eq(schema_, {1, -1, -1, -1, -1});
  plain.add(SubscriptionId{1}, sub);
  optimized.add(SubscriptionId{1}, sub);

  MatchStats plain_stats, opt_stats;
  const auto e = ev(schema_, {1, 0, 0, 0, 0});
  EXPECT_EQ(sorted_match(plain, e, &plain_stats), sorted_match(optimized, e, &opt_stats));
  // Plain visits root + the a1=1 node + the star chain + the leaf (6); the
  // optimized tree skips the star-only chain entirely: root, then the a1=1
  // node collapses through the chain onto the leaf.
  EXPECT_EQ(plain_stats.nodes_visited, 6u);
  EXPECT_EQ(opt_stats.nodes_visited, 2u);
}

TEST_F(PstTest, StepCountsGrowSublinearly) {
  // The companion-paper claim: matching cost grows less than linearly in
  // the number of subscriptions. Verify the trend on random workloads.
  Rng rng(7);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.9, 1.0});
  EventGenerator events(schema_);
  Pst tree(schema_, identity_order(schema_));
  std::int64_t next_id = 0;

  const auto steps_for_100_events = [&] {
    Rng ev_rng(1234);
    MatchStats stats;
    std::vector<SubscriptionId> out;
    for (int i = 0; i < 100; ++i) {
      out.clear();
      tree.match(events.generate(ev_rng), out, &stats);
    }
    return stats.nodes_visited;
  };

  std::vector<Subscription> kept;
  for (int i = 0; i < 500; ++i) {
    const auto s = gen.generate(rng);
    tree.add(SubscriptionId{next_id++}, s);
  }
  const auto steps_500 = steps_for_100_events();
  for (int i = 0; i < 1500; ++i) {
    tree.add(SubscriptionId{next_id++}, gen.generate(rng));
  }
  const auto steps_2000 = steps_for_100_events();
  // 4x subscriptions must cost well under 4x the steps.
  EXPECT_LT(static_cast<double>(steps_2000), 3.0 * static_cast<double>(steps_500));
  tree.check_invariants();
}

TEST_F(PstTest, RandomizedAddRemoveKeepsInvariantsAndSemantics) {
  Rng rng(99);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  EventGenerator events(schema_);
  Pst tree(schema_, identity_order(schema_));
  std::vector<std::pair<SubscriptionId, Subscription>> live;
  std::int64_t next_id = 0;

  for (int round = 0; round < 300; ++round) {
    if (live.empty() || rng.chance(0.6)) {
      const Subscription s = gen.generate(rng);
      const SubscriptionId id{next_id++};
      tree.add(id, s);
      live.emplace_back(id, s);
    } else {
      const std::size_t pick = rng.below(live.size());
      ASSERT_TRUE(tree.remove(live[pick].first, live[pick].second).has_value());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (round % 50 == 0) tree.check_invariants();
  }
  tree.check_invariants();

  // Semantics: tree matches exactly the brute-force evaluation.
  for (int i = 0; i < 50; ++i) {
    const Event e = events.generate(rng);
    std::vector<SubscriptionId> expected;
    for (const auto& [id, s] : live) {
      if (s.matches(e)) expected.push_back(id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(sorted_match(tree, e), expected);
  }
}

TEST_F(PstTest, OrderValidation) {
  EXPECT_THROW(Pst(schema_, {0, 0}), std::invalid_argument);
  EXPECT_THROW(Pst(schema_, {9}), std::invalid_argument);
  EXPECT_THROW(Pst(nullptr, {}), std::invalid_argument);
}

TEST_F(PstTest, PartialOrderTreeIgnoresOtherAttributes) {
  // A tree over a subset of attributes (factoring residue).
  Pst tree(schema_, {2, 3, 4});
  tree.add(SubscriptionId{1}, sub_eq(schema_, {1, 1, 3, -1, -1}));  // a1, a2 consumed elsewhere
  EXPECT_EQ(sorted_match(tree, ev(schema_, {0, 0, 3, 0, 0})),
            (std::vector<SubscriptionId>{SubscriptionId{1}}));
}

}  // namespace
}  // namespace gryphon
