// Property-based sweep: for random topologies, subscription sets, and
// events, the link-matching protocol delivers exactly the centrally-matched
// destination set, with at most one copy per link (TEST_P over seeds).
#include <gtest/gtest.h>

#include <set>

#include "routing/content_router.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

struct Params {
  std::uint64_t seed;
  bool tree_like;  // add lateral links
  std::size_t factoring_levels;
};

class RoutingProperty : public ::testing::TestWithParam<Params> {};

TEST_P(RoutingProperty, ExactDeliveryOnRandomNetworks) {
  const Params params = GetParam();
  Rng rng(params.seed);
  const std::size_t n_brokers = 4 + rng.below(12);
  const auto net =
      params.tree_like
          ? make_random_tree_like(n_brokers, rng, 5, 40, 3, 1, 1 + rng.below(3))
          : make_random_tree(n_brokers, rng, 5, 40, 3, 1);

  const auto schema = make_synthetic_schema(5 + rng.below(4), 3 + rng.below(3));
  std::vector<BrokerId> roots;
  for (std::size_t b = 0; b < n_brokers; b += 1 + rng.below(3)) {
    roots.push_back(BrokerId{static_cast<BrokerId::rep_type>(b)});
  }
  PstMatcherOptions options;
  options.factoring_levels = params.factoring_levels;
  ContentRoutingNetwork crn(net, schema, roots, options);

  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  const std::size_t n_subs = 50 + rng.below(300);
  for (std::size_t i = 0; i < n_subs; ++i) {
    const ClientId client{static_cast<ClientId::rep_type>(rng.below(net.client_count()))};
    crn.subscribe(SubscriptionId{static_cast<std::int64_t>(i)}, gen.generate(rng), client);
  }
  // Churn a little: remove a third of them.
  for (std::size_t i = 0; i < n_subs; i += 3) {
    crn.unsubscribe(SubscriptionId{static_cast<std::int64_t>(i)});
  }
  crn.check_consistency();

  EventGenerator events(schema);
  for (int trial = 0; trial < 40; ++trial) {
    const Event e = events.generate(rng);
    std::set<ClientId::rep_type> expected;
    for (const SubscriptionId id : crn.match(e)) expected.insert(crn.destination_of(id).value);

    for (const BrokerId root : roots) {
      std::set<ClientId::rep_type> delivered;
      std::set<std::pair<int, int>> used_links;  // (broker, port): one copy each
      std::vector<BrokerId> frontier{root};
      std::set<int> visited;
      while (!frontier.empty()) {
        const BrokerId at = frontier.back();
        frontier.pop_back();
        ASSERT_TRUE(visited.insert(at.value).second) << "broker got two copies";
        const auto result = crn.route(at, e, root);
        for (const LinkIndex link : result.links) {
          ASSERT_TRUE(used_links.insert({at.value, link.value}).second)
              << "link carried two copies";
          const auto& port = net.ports(at)[static_cast<std::size_t>(link.value)];
          if (port.kind == BrokerNetwork::PortKind::kClient) {
            ASSERT_TRUE(delivered.insert(port.peer_client.value).second)
                << "client delivered twice";
          } else {
            frontier.push_back(port.peer_broker);
          }
        }
      }
      EXPECT_EQ(delivered, expected)
          << "seed " << params.seed << " root " << root << " event " << e.to_text();
    }
  }
}

std::vector<Params> make_params() {
  std::vector<Params> out;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({seed, seed % 2 == 0, seed % 4 == 0 ? 1u : 0u});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty, ::testing::ValuesIn(make_params()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  (info.param.tree_like ? "_lateral" : "_tree") +
                                  (info.param.factoring_levels > 0 ? "_factored" : "");
                         });

}  // namespace
}  // namespace gryphon
