// Saturation search behaviour (Chart 1 harness).
#include <gtest/gtest.h>

#include "sim/saturation.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

TEST(Saturation, BinarySearchFindsThresholdOfSyntheticOracle) {
  // Oracle: overloaded iff rate > 333. The search must bracket that value.
  SaturationConfig config;
  config.min_rate = 1.0;
  config.max_rate = 10000.0;
  config.relative_tolerance = 0.02;
  const auto result = find_saturation_rate(config, [](double rate, std::uint64_t) {
    SimResult r;
    r.overloaded = rate > 333.0;
    return r;
  });
  EXPECT_GT(result.saturation_rate, 300.0);
  EXPECT_LE(result.saturation_rate, 333.0);
  EXPECT_GT(result.simulations_run, 5u);
}

TEST(Saturation, AlwaysOverloadedReportsZero) {
  SaturationConfig config;
  const auto result = find_saturation_rate(config, [](double, std::uint64_t) {
    SimResult r;
    r.overloaded = true;
    return r;
  });
  EXPECT_EQ(result.saturation_rate, 0.0);
  EXPECT_EQ(result.simulations_run, 1u);
}

TEST(Saturation, NeverOverloadedReportsMaxRate) {
  SaturationConfig config;
  config.max_rate = 5000.0;
  const auto result =
      find_saturation_rate(config, [](double, std::uint64_t) { return SimResult{}; });
  EXPECT_EQ(result.saturation_rate, 5000.0);
}

TEST(Saturation, BadBoundsThrow) {
  SaturationConfig config;
  config.min_rate = 100.0;
  config.max_rate = 50.0;
  EXPECT_THROW(find_saturation_rate(config, [](double, std::uint64_t) { return SimResult{}; }),
               std::invalid_argument);
}

TEST(Saturation, SimulatedBrokerNetworkSaturatesMonotonically) {
  // An end-to-end check of the Chart 1 machinery with the paper's run size
  // (500 published events): at a modest rate the network drains, at an
  // extreme rate it overloads, and the searched saturation rate of link
  // matching exceeds flooding's (the Chart 1 ordering).
  SimSpec base;
  base.seed = 9;
  base.topology.kind = TopologyKind::kFigure6;
  base.workload.subscriptions = 1000;
  base.workload.events = 500;
  // The paper's Chart 1 parameters use 2 factoring levels (Section 4.1).
  base.matcher.factoring_levels = 2;
  base.verify.verify_deliveries = false;
  base.limits.drain_limit = ticks_from_seconds(5);

  Simulation lm_sim([&] {
    SimSpec s = base;
    s.protocol = Protocol::kLinkMatching;
    return s;
  }());
  Simulation fl_sim([&] {
    SimSpec s = base;
    s.protocol = Protocol::kFlooding;
    return s;
  }());
  const auto run = [&](Simulation& sim, double rate, std::uint64_t seed) {
    return sim.run_at_rate(rate, seed);
  };

  const auto lm_low = run(lm_sim, 100.0, 7);
  EXPECT_FALSE(lm_low.overloaded);

  // At an absurd rate every protocol overloads (inter-arrival ~ 1 tick,
  // well below any per-event service time).
  const auto lm_extreme = run(lm_sim, 2e6, 7);
  EXPECT_TRUE(lm_extreme.overloaded);

  SaturationConfig sat;
  sat.min_rate = 50.0;
  sat.max_rate = 2e6;
  sat.relative_tolerance = 0.2;
  sat.events = base.workload.events;
  const auto lm = find_saturation_rate(sat, [&](double rate, std::uint64_t seed) {
    return run(lm_sim, rate, seed);
  });
  const auto fl = find_saturation_rate(sat, [&](double rate, std::uint64_t seed) {
    return run(fl_sim, rate, seed);
  });
  ASSERT_GT(fl.saturation_rate, 0.0);
  EXPECT_GT(lm.saturation_rate, fl.saturation_rate)
      << "link matching must sustain a higher publish rate than flooding";
}

}  // namespace
}  // namespace gryphon
