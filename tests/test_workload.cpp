#include "workload/generators.h"

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace gryphon {
namespace {

TEST(SubscriptionGenerator, RespectsSchema) {
  const auto schema = make_synthetic_schema(10, 5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto s = gen.generate(rng);
    EXPECT_EQ(s.tests().size(), 10u);
    EXPECT_TRUE(s.equality_only());
  }
}

TEST(SubscriptionGenerator, NonStarProbabilityDecays) {
  const auto schema = make_synthetic_schema(10, 5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  Rng rng(42);
  std::vector<int> non_star(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = gen.generate(rng);
    for (std::size_t a = 0; a < 10; ++a) {
      if (!s.test(a).is_dont_care()) ++non_star[a];
    }
  }
  // First attribute: ~0.98; attribute i: 0.98 * 0.85^i.
  double expected = 0.98;
  for (std::size_t a = 0; a < 10; ++a) {
    EXPECT_NEAR(static_cast<double>(non_star[a]) / n, expected, 0.02) << "attribute " << a;
    expected *= 0.85;
  }
}

TEST(SubscriptionGenerator, ValuesAreZipfSkewed) {
  const auto schema = make_synthetic_schema(1, 5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{1.0, 1.0, 1.0});
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto s = gen.generate(rng);
    ASSERT_EQ(s.test(0).kind, TestKind::kEquals);
    ++counts[static_cast<std::size_t>(s.test(0).operand.as_int())];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
}

TEST(SubscriptionGenerator, LocalityPermutationShiftsHotValue) {
  const auto schema = make_synthetic_schema(1, 5);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{1.0, 1.0, 1.0});
  const auto perm1 = locality_permutation(5, 1);
  Rng rng(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto s = gen.generate(rng, &perm1);
    ++counts[static_cast<std::size_t>(s.test(0).operand.as_int())];
  }
  // The hottest value is perm1[0], not 0.
  const auto hottest = static_cast<std::size_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
  EXPECT_EQ(hottest, perm1[0]);
  EXPECT_NE(hottest, 0u);
}

TEST(SubscriptionGenerator, RequiresFiniteDomains) {
  const auto schema = make_schema("s", {Attribute{"open", AttributeType::kString, {}}});
  EXPECT_THROW(SubscriptionGenerator(schema, SubscriptionWorkloadConfig{}),
               std::invalid_argument);
}

TEST(EventGenerator, ProducesCompleteDomainEvents) {
  const auto schema = make_synthetic_schema(10, 5);
  EventGenerator gen(schema);
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const Event e = gen.generate(rng);
    EXPECT_TRUE(e.complete());
    for (std::size_t a = 0; a < 10; ++a) {
      EXPECT_GE(e.value(a).as_int(), 0);
      EXPECT_LT(e.value(a).as_int(), 5);
    }
  }
}

TEST(Selectivity, PaperWorkloadIsVerySelective) {
  // Section 4.1 (network loading): 10 attributes, 5 values, first-attribute
  // p=0.98, decay 0.85 -> "on average, each event matches only about 0.1%
  // of subscriptions". Accept the right order of magnitude.
  const auto schema = make_synthetic_schema(10, 5);
  SubscriptionGenerator sub_gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  EventGenerator ev_gen(schema);
  Rng rng(2025);
  std::vector<Subscription> subs;
  std::vector<Event> events;
  for (int i = 0; i < 2000; ++i) subs.push_back(sub_gen.generate(rng));
  for (int i = 0; i < 200; ++i) events.push_back(ev_gen.generate(rng));
  const double selectivity = measure_selectivity(subs, events);
  EXPECT_GT(selectivity, 0.0002);
  EXPECT_LT(selectivity, 0.02);
}

TEST(Selectivity, MatchingTimeWorkloadIsLessSelective) {
  // Section 4.1 (matching time): 10 attributes, 3 values, decay 0.82 ->
  // about 1.3% of subscriptions.
  const auto schema = make_synthetic_schema(10, 3);
  SubscriptionGenerator sub_gen(schema, SubscriptionWorkloadConfig{0.98, 0.82, 1.0});
  EventGenerator ev_gen(schema);
  Rng rng(2026);
  std::vector<Subscription> subs;
  std::vector<Event> events;
  for (int i = 0; i < 2000; ++i) subs.push_back(sub_gen.generate(rng));
  for (int i = 0; i < 200; ++i) events.push_back(ev_gen.generate(rng));
  const double selectivity = measure_selectivity(subs, events);
  EXPECT_GT(selectivity, 0.004);
  EXPECT_LT(selectivity, 0.06);
}

TEST(Selectivity, EmptyInputsGiveZero) {
  EXPECT_EQ(measure_selectivity({}, {}), 0.0);
}

}  // namespace
}  // namespace gryphon
