#include "broker/event_log.h"

#include <gtest/gtest.h>

namespace gryphon {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag, tag, tag}; }

TEST(EventLog, SequencesStartAtOne) {
  EventLog log;
  EXPECT_EQ(log.append(SpaceId{0}, payload(1), 10), 1u);
  EXPECT_EQ(log.append(SpaceId{0}, payload(2), 11), 2u);
  EXPECT_EQ(log.last_seq(), 2u);
  EXPECT_EQ(log.size(), 2u);
}

TEST(EventLog, UnacknowledgedReturnsSuffix) {
  EventLog log;
  for (std::uint8_t i = 1; i <= 5; ++i) log.append(SpaceId{0}, payload(i), i);
  const auto all = log.unacknowledged();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all.front()->seq, 1u);
  const auto after3 = log.unacknowledged(3);
  ASSERT_EQ(after3.size(), 2u);
  EXPECT_EQ(after3.front()->seq, 4u);
  EXPECT_EQ(after3.front()->event, payload(4));
}

TEST(EventLog, CumulativeAckCollects) {
  EventLog log;
  for (std::uint8_t i = 1; i <= 5; ++i) log.append(SpaceId{0}, payload(i), i);
  log.acknowledge(3);
  EXPECT_EQ(log.acked_seq(), 3u);
  EXPECT_EQ(log.size(), 2u);
  // Acks never regress.
  log.acknowledge(2);
  EXPECT_EQ(log.acked_seq(), 3u);
  log.acknowledge(5);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.last_seq(), 5u);
}

TEST(EventLog, SequencesSurviveCollection) {
  EventLog log;
  log.append(SpaceId{0}, payload(1), 1);
  log.acknowledge(1);
  EXPECT_EQ(log.append(SpaceId{0}, payload(2), 2), 2u);  // numbering continues
}

TEST(EventLog, GarbageCollectorDropsOldEntries) {
  EventLog log;
  log.append(SpaceId{0}, payload(1), 100);
  log.append(SpaceId{0}, payload(2), 200);
  log.append(SpaceId{0}, payload(3), 900);
  // Retention 500 at time 1000: entries logged before 500 die.
  EXPECT_EQ(log.collect(1000, 500), 2u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.unacknowledged().front()->seq, 3u);
}

TEST(EventLog, CollectorKeepsFreshEntries) {
  EventLog log;
  log.append(SpaceId{0}, payload(1), 990);
  EXPECT_EQ(log.collect(1000, 500), 0u);
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLog, SpaceTagPreserved) {
  EventLog log;
  log.append(SpaceId{7}, payload(1), 1);
  EXPECT_EQ(log.unacknowledged().front()->space, SpaceId{7});
}

TEST(EventLog, CollectorRecordsTruncatedReplayWindow) {
  // Retention GC dropping *unacknowledged* entries must not silently
  // shrink the replay window: the gap is recorded so a reconnecting
  // consumer can be told what it lost.
  EventLog log;
  log.append(SpaceId{0}, payload(1), 100);
  log.append(SpaceId{0}, payload(2), 200);
  log.append(SpaceId{0}, payload(3), 900);
  EXPECT_EQ(log.truncated_through(), 0u);
  EXPECT_EQ(log.collect(1000, 500), 2u);  // entries 1 and 2 die unacked
  EXPECT_EQ(log.truncated_through(), 2u);
  // A consumer resuming from seq 0 has a hole [1, 2]; one resuming from
  // seq >= 2 lost nothing.
  EXPECT_LT(0u, log.truncated_through());
}

TEST(EventLog, CollectingAcknowledgedEntriesIsNotTruncation) {
  EventLog log;
  log.append(SpaceId{0}, payload(1), 100);
  log.append(SpaceId{0}, payload(2), 200);
  log.acknowledge(2);
  log.append(SpaceId{0}, payload(3), 900);
  // Nothing unacked is old enough to die: no truncation.
  EXPECT_EQ(log.collect(1000, 500), 0u);
  EXPECT_EQ(log.truncated_through(), 0u);
}

TEST(EventLog, TruncationIsMonotonic) {
  EventLog log;
  for (std::uint8_t i = 1; i <= 4; ++i) {
    log.append(SpaceId{0}, payload(i), static_cast<Ticks>(i) * 100);
  }
  EXPECT_EQ(log.collect(700, 500), 1u);  // entry 1 dies
  EXPECT_EQ(log.truncated_through(), 1u);
  EXPECT_EQ(log.collect(900, 500), 2u);  // entries 2 and 3 die
  EXPECT_EQ(log.truncated_through(), 3u);
}

TEST(EventLog, DropAllCountsAndRecordsUnackedLoss) {
  EventLog log;
  for (std::uint8_t i = 1; i <= 5; ++i) log.append(SpaceId{0}, payload(i), i);
  log.acknowledge(2);
  EXPECT_EQ(log.drop_all(), 3u);  // 3, 4, 5 were unacked
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.truncated_through(), 5u);
  // Sequence numbering continues across the purge.
  EXPECT_EQ(log.append(SpaceId{0}, payload(6), 6), 6u);
}

TEST(EventLog, OriginTagPreservedForLinkLogs) {
  // Broker-link logs stash the spanning-tree root so a replayed
  // EventForward reconstructs the original frame.
  EventLog log;
  log.append(SpaceId{1}, payload(1), 1, BrokerId{7});
  log.append(SpaceId{1}, payload(2), 2);  // client logs leave it invalid
  const auto entries = log.unacknowledged();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->origin, BrokerId{7});
  EXPECT_FALSE(entries[1]->origin.valid());
}

TEST(EventLog, ReplayAfterReconnectScenario) {
  // The paper's transient-failure story: deliveries 1-2 acked, client
  // disconnects, 3-5 accumulate, client reconnects having seen up to 2.
  EventLog log;
  for (std::uint8_t i = 1; i <= 2; ++i) log.append(SpaceId{0}, payload(i), i);
  log.acknowledge(2);
  for (std::uint8_t i = 3; i <= 5; ++i) log.append(SpaceId{0}, payload(i), i);
  const auto replay = log.unacknowledged(2);
  ASSERT_EQ(replay.size(), 3u);
  EXPECT_EQ(replay[0]->seq, 3u);
  EXPECT_EQ(replay[2]->seq, 5u);
}

}  // namespace
}  // namespace gryphon
