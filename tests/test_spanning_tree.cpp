#include "topology/spanning_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

TEST(SpanningTree, LineRootedAtEnd) {
  const auto net = make_line(4, 10, 1, 1);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{0});

  EXPECT_EQ(tree.root(), BrokerId{0});
  EXPECT_FALSE(tree.parent(BrokerId{0}).valid());
  EXPECT_EQ(tree.parent(BrokerId{1}), BrokerId{0});
  EXPECT_EQ(tree.parent(BrokerId{3}), BrokerId{2});
  EXPECT_EQ(tree.depth(BrokerId{0}), 0);
  EXPECT_EQ(tree.depth(BrokerId{3}), 3);
  EXPECT_EQ(tree.children(BrokerId{1}), (std::vector<BrokerId>{BrokerId{2}}));
  EXPECT_TRUE(tree.children(BrokerId{3}).empty());
}

TEST(SpanningTree, DescendantQueries) {
  const auto net = make_line(4, 10, 0, 1);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{1});
  EXPECT_TRUE(tree.is_descendant(BrokerId{3}, BrokerId{2}));
  EXPECT_TRUE(tree.is_descendant(BrokerId{2}, BrokerId{2}));
  EXPECT_FALSE(tree.is_descendant(BrokerId{0}, BrokerId{2}));
  EXPECT_TRUE(tree.is_descendant(BrokerId{0}, BrokerId{1}));
}

TEST(SpanningTree, TreeNextHopDownAndUp) {
  const auto net = make_line(4, 10, 0, 1);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{0});
  // Downstream: from 1 toward 3 goes through the port to 2.
  EXPECT_EQ(tree.tree_next_hop(BrokerId{1}, BrokerId{3}), net.port_to_broker(BrokerId{1}, BrokerId{2}));
  // Upstream: from 2 toward 0 goes through the parent port.
  EXPECT_EQ(tree.tree_next_hop(BrokerId{2}, BrokerId{0}), net.port_to_broker(BrokerId{2}, BrokerId{1}));
}

TEST(SpanningTree, ClientNextHop) {
  const auto net = make_line(3, 10, 1, 1);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{0});
  const ClientId local = net.clients_of(BrokerId{1})[0];
  const ClientId remote = net.clients_of(BrokerId{2})[0];
  EXPECT_EQ(tree.tree_next_hop_to_client(BrokerId{1}, local), net.client_port(local));
  EXPECT_EQ(tree.tree_next_hop_to_client(BrokerId{1}, remote),
            net.port_to_broker(BrokerId{1}, BrokerId{2}));
}

TEST(SpanningTree, DownstreamClientCounts) {
  const auto net = make_line(3, 10, 2, 1);  // 2 clients per broker
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{0});
  // From broker 0: the port toward 1 leads to brokers 1 and 2 -> 4 clients.
  EXPECT_EQ(tree.downstream_client_count(BrokerId{0}, net.port_to_broker(BrokerId{0}, BrokerId{1})),
            4u);
  // From broker 1: toward 2 -> 2 clients; toward 0 (upstream) -> 0.
  EXPECT_EQ(tree.downstream_client_count(BrokerId{1}, net.port_to_broker(BrokerId{1}, BrokerId{2})),
            2u);
  EXPECT_EQ(tree.downstream_client_count(BrokerId{1}, net.port_to_broker(BrokerId{1}, BrokerId{0})),
            0u);
  // Client ports count themselves.
  EXPECT_EQ(tree.downstream_client_count(BrokerId{1}, net.client_port(net.clients_of(BrokerId{1})[0])),
            1u);
}

TEST(SpanningTree, CyclicGraphUsesShortestPaths) {
  // Square with one expensive edge: the tree avoids it.
  BrokerNetwork net;
  for (int i = 0; i < 4; ++i) net.add_broker();
  net.connect(BrokerId{0}, BrokerId{1}, 10);
  net.connect(BrokerId{1}, BrokerId{2}, 10);
  net.connect(BrokerId{2}, BrokerId{3}, 10);
  net.connect(BrokerId{3}, BrokerId{0}, 100);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{0});
  EXPECT_EQ(tree.parent(BrokerId{3}), BrokerId{2});  // not the direct slow edge
  EXPECT_EQ(tree.depth(BrokerId{3}), 3);
}

TEST(SpanningTree, DifferentRootsDifferentShapes) {
  const auto topo = make_figure6();
  RoutingTable routing(topo.network);
  SpanningTree t0(topo.network, routing, topo.publisher_brokers[0]);
  SpanningTree t1(topo.network, routing, topo.publisher_brokers[1]);
  EXPECT_EQ(t0.depth(topo.publisher_brokers[0]), 0);
  EXPECT_GT(t0.depth(topo.publisher_brokers[1]), 0);
  EXPECT_EQ(t1.depth(topo.publisher_brokers[1]), 0);
}

TEST(SpanningTree, EveryBrokerReachedOnFigure6) {
  const auto topo = make_figure6();
  RoutingTable routing(topo.network);
  for (const BrokerId root : topo.publisher_brokers) {
    SpanningTree tree(topo.network, routing, root);
    std::size_t total_downstream = 0;
    for (std::size_t pi = 0; pi < topo.network.port_count(root); ++pi) {
      total_downstream +=
          tree.downstream_client_count(root, LinkIndex{static_cast<LinkIndex::rep_type>(pi)});
    }
    // From the root, every client in the network is downstream.
    EXPECT_EQ(total_downstream, topo.network.client_count());
    for (std::size_t b = 0; b < topo.network.broker_count(); ++b) {
      EXPECT_GE(tree.depth(BrokerId{static_cast<BrokerId::rep_type>(b)}), 0);
    }
  }
}

TEST(SpanningTree, RandomTreeParentsFollowUniquePaths) {
  Rng rng(17);
  const auto net = make_random_tree(30, rng, 5, 20, 1, 1);
  RoutingTable routing(net);
  SpanningTree tree(net, routing, BrokerId{5});
  // On an acyclic network the spanning tree must reproduce the unique path
  // structure: every non-root broker's parent is its next hop to the root.
  for (std::size_t b = 0; b < 30; ++b) {
    const BrokerId broker{static_cast<BrokerId::rep_type>(b)};
    if (broker == BrokerId{5}) continue;
    const auto hop = routing.next_hop(broker, BrokerId{5});
    const auto& port = net.ports(broker)[static_cast<std::size_t>(hop.value)];
    EXPECT_EQ(tree.parent(broker), port.peer_broker);
  }
}

}  // namespace
}  // namespace gryphon
