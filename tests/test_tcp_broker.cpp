// The broker prototype over real TCP/IP on loopback (paper Section 4.2:
// "broker nodes are implemented ... using TCP/IP as the network protocol").
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "broker/broker.h"
#include "broker/client.h"
#include "broker/tcp_transport.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

SchemaPtr trade_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}}});
}

/// Breaks the handler/transport construction cycle: the transport is built
/// against the relay, then the relay is pointed at the real handler.
struct Relay : TransportHandler {
  TransportHandler* target{nullptr};
  void on_connect(ConnId conn) override {
    if (target != nullptr) target->on_connect(conn);
  }
  void on_frame(ConnId conn, std::span<const std::uint8_t> frame) override {
    if (target != nullptr) target->on_frame(conn, frame);
  }
  void on_disconnect(ConnId conn) override {
    if (target != nullptr) target->on_disconnect(conn);
  }
};

struct TcpBrokerNode {
  Relay relay;
  TcpTransport transport{relay};
  std::unique_ptr<Broker> broker;
  std::uint16_t port{0};

  TcpBrokerNode(BrokerId id, const BrokerNetwork& topo, std::vector<SchemaPtr> spaces) {
    broker = std::make_unique<Broker>(id, topo, std::move(spaces), transport);
    relay.target = broker.get();
    port = transport.listen(0);
  }
  ~TcpBrokerNode() { transport.shutdown(); }
};

struct TcpClientNode {
  Relay relay;
  TcpTransport transport{relay};
  std::unique_ptr<Client> client;

  TcpClientNode(const std::string& name, std::vector<SchemaPtr> spaces, std::uint16_t port) {
    client = std::make_unique<Client>(name, transport, std::move(spaces));
    relay.target = client.get();
    client->bind(transport.connect("127.0.0.1", port));
  }
  ~TcpClientNode() { transport.shutdown(); }
};

TEST(TcpBroker, SingleBrokerPubSub) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  TcpBrokerNode node(BrokerId{0}, topo, {schema});

  TcpClientNode sub("sub", {schema}, node.port);
  const auto token = sub.client->subscribe(0, "issue = \"IBM\" & volume > 100");

  // Wait for the subscribe ack before publishing.
  for (int i = 0; i < 200 && !sub.client->subscription_id(token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(sub.client->subscription_id(token).has_value());

  TcpClientNode pub("pub", {schema}, node.port);
  pub.client->publish(0, Event(schema, {Value("IBM"), Value(10.0), Value(500)}));
  pub.client->publish(0, Event(schema, {Value("IBM"), Value(10.0), Value(50)}));

  ASSERT_TRUE(sub.client->wait_for_deliveries(1, 3000));
  const auto got = sub.client->take_deliveries();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].event.value(2).as_int(), 500);
}

TEST(TcpBroker, TwoBrokersForwardOverTcp) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(2, 10, 0, 1);
  TcpBrokerNode b0(BrokerId{0}, topo, {schema});
  TcpBrokerNode b1(BrokerId{1}, topo, {schema});

  // Broker 0 dials broker 1.
  const ConnId link = b0.transport.connect("127.0.0.1", b1.port);
  b0.broker->attach_broker_link(link, BrokerId{1});

  TcpClientNode sub("far-sub", {schema}, b1.port);
  const auto token = sub.client->subscribe(0, "price >= 100");
  for (int i = 0; i < 200 && !sub.client->subscription_id(token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(sub.client->subscription_id(token).has_value());

  // Give the subscription a moment to propagate to broker 0.
  for (int i = 0; i < 200 && b0.broker->subscription_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(b0.broker->subscription_count(), 1u);

  TcpClientNode pub("near-pub", {schema}, b0.port);
  pub.client->publish(0, Event(schema, {Value("A"), Value(150.0), Value(1)}));
  pub.client->publish(0, Event(schema, {Value("A"), Value(50.0), Value(1)}));

  ASSERT_TRUE(sub.client->wait_for_deliveries(1, 3000));
  const auto got = sub.client->take_deliveries();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].event.value(1).as_double(), 150.0);
  EXPECT_EQ(b0.broker->stats().events_forwarded, 1u);
}

TEST(TcpBroker, ReconnectReplayOverTcp) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  TcpBrokerNode node(BrokerId{0}, topo, {schema});

  auto sub = std::make_unique<TcpClientNode>("flaky", std::vector<SchemaPtr>{schema}, node.port);
  const auto token = sub->client->subscribe(0, "volume > 0");
  for (int i = 0; i < 200 && !sub->client->subscription_id(token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(sub->client->subscription_id(token).has_value());

  TcpClientNode pub("pub", {schema}, node.port);
  pub.client->publish(0, Event(schema, {Value("A"), Value(1.0), Value(1)}));
  ASSERT_TRUE(sub->client->wait_for_deliveries(1, 3000));
  sub->client->take_deliveries();

  // The delivery ack travels back asynchronously; wait until the broker has
  // collected the logged entry, or the simulated crash below can race the
  // ack away and "A" replays alongside "B"/"C".
  for (int i = 0; i < 600 && node.broker->client_log_size("flaky") != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(node.broker->client_log_size("flaky"), 0u);

  // Kill the subscriber's transport entirely (simulated crash).
  sub.reset();
  // The broker should notice the disconnect and keep logging.
  pub.client->publish(0, Event(schema, {Value("B"), Value(2.0), Value(2)}));
  pub.client->publish(0, Event(schema, {Value("C"), Value(3.0), Value(3)}));
  for (int i = 0; i < 200 && node.broker->client_log_size("flaky") < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(node.broker->client_log_size("flaky"), 2u);

  // Reconnect under the same name; the missed events replay.
  TcpClientNode again("flaky", {schema}, node.port);
  ASSERT_TRUE(again.client->wait_for_deliveries(2, 3000));
  const auto replayed = again.client->take_deliveries();
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].event.value(0).as_string(), "B");
  EXPECT_EQ(replayed[1].event.value(0).as_string(), "C");
}

TEST(TcpBroker, ManyFramesPreserveOrder) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  TcpBrokerNode node(BrokerId{0}, topo, {schema});

  TcpClientNode sub("sub", {schema}, node.port);
  const auto token = sub.client->subscribe(0, "volume >= 0");
  for (int i = 0; i < 200 && !sub.client->subscription_id(token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(sub.client->subscription_id(token).has_value());

  TcpClientNode pub("pub", {schema}, node.port);
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    pub.client->publish(0, Event(schema, {Value("X"), Value(1.0), Value(i)}));
  }
  ASSERT_TRUE(sub.client->wait_for_deliveries(kEvents, 10000));
  const auto got = sub.client->take_deliveries();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].event.value(2).as_int(), i);
  }
}


TEST(TcpTransport, GarbageFrameSizeDropsConnection) {
  // A peer announcing an absurd frame length is protocol corruption: the
  // transport must drop the connection rather than try to allocate it.
  struct Recorder : TransportHandler {
    std::atomic<int> connects{0};
    std::atomic<int> disconnects{0};
    void on_connect(ConnId) override { ++connects; }
    void on_frame(ConnId, std::span<const std::uint8_t>) override {}
    void on_disconnect(ConnId) override { ++disconnects; }
  };
  Recorder recorder;
  TcpTransport server(recorder);
  const std::uint16_t port = server.listen(0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  for (int i = 0; i < 200 && recorder.connects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(recorder.connects.load(), 1);

  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB frame
  ASSERT_EQ(::send(fd, huge, sizeof(huge), 0), 4);
  for (int i = 0; i < 200 && recorder.disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(recorder.disconnects.load(), 1);
  ::close(fd);
  server.shutdown();
}

TEST(TcpTransport, ZeroLengthFrameDropsConnection) {
  struct Recorder : TransportHandler {
    std::atomic<int> disconnects{0};
    void on_connect(ConnId) override {}
    void on_frame(ConnId, std::span<const std::uint8_t>) override {}
    void on_disconnect(ConnId) override { ++disconnects; }
  };
  Recorder recorder;
  TcpTransport server(recorder);
  const std::uint16_t port = server.listen(0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fd, zero, sizeof(zero), 0), 4);
  for (int i = 0; i < 200 && recorder.disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(recorder.disconnects.load(), 1);
  ::close(fd);
  server.shutdown();
}

TEST(TcpBroker, MalformedPublishPayloadGetsErrorFrame) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  TcpBrokerNode node(BrokerId{0}, topo, {schema});

  TcpClientNode client("messy", {schema}, node.port);
  // Wait for the hello handshake, then push a publish frame whose payload
  // is not a valid event encoding.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client.transport.send(1, wire::encode(wire::Publish{SpaceId{0}, {0x01, 0x02}}));
  for (int i = 0; i < 200; ++i) {
    if (!client.client->take_errors().empty()) return;  // got the error frame
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "no error frame received";
}

}  // namespace
}  // namespace gryphon
