// End-to-end simulation: all three protocols on the paper's Figure 6
// topology must deliver exactly the centrally-matched destination set, and
// their network-load profiles must order as the paper claims.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

struct SimBed {
  Figure6Topology topo = make_figure6();
  SchemaPtr schema = make_synthetic_schema(10, 5);
  std::vector<SimSubscription> subscriptions;
  std::vector<Event> events;
  std::vector<PublishRecord> schedule;

  explicit SimBed(std::size_t n_subs, std::size_t n_events, double rate, std::uint64_t seed = 1) {
    Rng rng(seed);
    SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
    for (std::size_t i = 0; i < n_subs; ++i) {
      const ClientId client = topo.subscribers[rng.below(topo.subscribers.size())];
      const auto region = static_cast<std::uint32_t>(
          topo.region_of[static_cast<std::size_t>(topo.network.client_home(client).value)]);
      const auto perm = locality_permutation(5, region);
      subscriptions.push_back(
          SimSubscription{SubscriptionId{static_cast<std::int64_t>(i)}, gen.generate(rng, &perm),
                          client});
    }
    EventGenerator ev_gen(schema);
    for (std::size_t i = 0; i < n_events; ++i) events.push_back(ev_gen.generate(rng));
    schedule = make_poisson_schedule(topo.publisher_brokers, n_events, rate, rng);
  }

  SimResult run(Protocol protocol, bool verify_single_copy = true) {
    SimConfig config;
    config.protocol = protocol;
    config.verify_single_copy_per_link = verify_single_copy;
    BrokerSimulation sim(topo.network, schema, topo.publisher_brokers, subscriptions,
                         PstMatcherOptions{}, config);
    return sim.run(events, schedule);
  }
};

class ProtocolCorrectness : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolCorrectness, ExactDeliveryNoDuplicatesNoLoss) {
  SimBed setup(400, 60, 50.0);
  const SimResult result = setup.run(GetParam());
  EXPECT_TRUE(result.drained);
  EXPECT_FALSE(result.overloaded);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
  EXPECT_EQ(result.duplicate_deliveries, 0u);
  EXPECT_EQ(result.duplicate_link_copies, 0u) << "a link carried an event twice";
  EXPECT_EQ(result.events_published, 60u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolCorrectness,
                         ::testing::Values(Protocol::kLinkMatching, Protocol::kFlooding,
                                           Protocol::kMatchFirst),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kLinkMatching: return "LinkMatching";
                             case Protocol::kFlooding: return "Flooding";
                             case Protocol::kMatchFirst: return "MatchFirst";
                           }
                           return "Unknown";
                         });

TEST(ProtocolLoad, FloodingSendsFarMoreBrokerMessages) {
  SimBed setup(600, 80, 50.0);
  const auto lm = setup.run(Protocol::kLinkMatching);
  const auto fl = setup.run(Protocol::kFlooding);
  // Flooding pushes every event over every tree link (38 per event on the
  // Figure 6 spanning trees); link matching uses only links with matching
  // subscribers downstream. With 0.1%-selective subscriptions the gap must
  // be large.
  EXPECT_EQ(fl.broker_messages, 38u * 80u);
  EXPECT_LT(lm.broker_messages * 3, fl.broker_messages);
  // Both deliver the same copies to clients.
  EXPECT_EQ(lm.client_messages, fl.client_messages);
  EXPECT_EQ(lm.deliveries, fl.deliveries);
}

TEST(ProtocolLoad, MatchFirstCarriesDestinationListBytes) {
  SimBed setup(600, 80, 50.0);
  const auto lm = setup.run(Protocol::kLinkMatching);
  const auto mf = setup.run(Protocol::kMatchFirst);
  EXPECT_EQ(lm.deliveries, mf.deliveries);
  ASSERT_GT(mf.broker_messages, 0u);
  ASSERT_GT(lm.broker_messages, 0u);
  // Per broker-to-broker message, match-first pays for the embedded
  // destination list; link matching carries only the event.
  const double mf_bytes_per_msg = static_cast<double>(mf.bytes_on_wire) /
                                  static_cast<double>(mf.broker_messages + mf.client_messages);
  const double lm_bytes_per_msg = static_cast<double>(lm.bytes_on_wire) /
                                  static_cast<double>(lm.broker_messages + lm.client_messages);
  EXPECT_GT(mf_bytes_per_msg, lm_bytes_per_msg);
}

TEST(ProtocolLoad, LinkMatchingStepsBoundedByCentralized) {
  // Chart 2's headline: cumulative link-matching steps for short paths stay
  // comparable to one centralized match. Check the aggregate over the run:
  // total link-matching steps across all brokers stays within a small
  // multiple of the pure centralized cost.
  SimBed setup(1000, 60, 50.0);
  const auto lm = setup.run(Protocol::kLinkMatching);
  ASSERT_GT(lm.centralized_steps, 0u);
  EXPECT_LT(lm.total_matching_steps, 8 * lm.centralized_steps);
}

TEST(ProtocolLatency, DeliveriesArriveWithinWanBudget) {
  SimBed setup(300, 40, 20.0);
  const auto lm = setup.run(Protocol::kLinkMatching);
  if (lm.deliveries == 0) GTEST_SKIP() << "no matching subscriptions drawn";
  // Worst WAN path in Figure 6: ~10+25+65+25+10+1 ms plus queueing.
  EXPECT_GT(lm.mean_delivery_latency_ms, 1.0);
  EXPECT_LT(lm.mean_delivery_latency_ms, 400.0);
}

TEST(ProtocolHops, PerHopStatsCoverFigureSixDepths) {
  SimBed setup(800, 80, 50.0);
  const auto lm = setup.run(Protocol::kLinkMatching);
  ASSERT_FALSE(lm.per_hop.empty());
  // Publishers sit at leaf brokers; a subscriber in a remote region is 6-7
  // brokers away, so multiple hop classes must be populated.
  EXPECT_GE(lm.per_hop.rbegin()->first, 4);
  for (const auto& [hops, stats] : lm.per_hop) {
    EXPECT_GE(hops, 1);
    EXPECT_GT(stats.deliveries, 0u);
    // Cumulative steps grow with the path, so they are at least the count.
    EXPECT_GT(stats.cumulative_steps, 0u);
  }
  // Cumulative mean steps must be non-decreasing in hop count... verify the
  // weaker, robust property: the farthest class costs more than the nearest.
  const auto& nearest = lm.per_hop.begin()->second;
  const auto& farthest = lm.per_hop.rbegin()->second;
  EXPECT_GT(farthest.mean_steps(), nearest.mean_steps());
}

TEST(SimSchedule, PoissonScheduleShape) {
  Rng rng(4);
  const auto schedule = make_poisson_schedule({BrokerId{0}, BrokerId{1}}, 100, 1000.0, rng);
  ASSERT_EQ(schedule.size(), 100u);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GT(schedule[i].time, schedule[i - 1].time);
    EXPECT_EQ(schedule[i].event_index, i);
  }
  EXPECT_EQ(schedule[0].broker, BrokerId{0});
  EXPECT_EQ(schedule[1].broker, BrokerId{1});
  EXPECT_THROW(make_poisson_schedule({}, 10, 100.0, rng), std::invalid_argument);
  EXPECT_THROW(make_poisson_schedule({BrokerId{0}}, 10, 0.0, rng), std::invalid_argument);
}

TEST(SimMisc, EmptyScheduleIsNoOp) {
  SimBed setup(10, 5, 100.0);
  SimConfig config;
  BrokerSimulation sim(setup.topo.network, setup.schema, setup.topo.publisher_brokers,
                       setup.subscriptions, PstMatcherOptions{}, config);
  const auto result = sim.run(setup.events, {});
  EXPECT_EQ(result.deliveries, 0u);
  EXPECT_FALSE(result.overloaded);
}

}  // namespace
}  // namespace gryphon
