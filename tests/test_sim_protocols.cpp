// End-to-end simulation: all three protocols on the paper's Figure 6
// topology must deliver exactly the centrally-matched destination set, and
// their network-load profiles must order as the paper claims.
#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace gryphon {
namespace {

SimSpec bed_spec(std::size_t n_subs, std::size_t n_events, double rate,
                 std::uint64_t seed = 1) {
  SimSpec spec;
  spec.seed = seed;
  spec.topology.kind = TopologyKind::kFigure6;
  spec.workload.subscriptions = n_subs;
  spec.workload.events = n_events;
  spec.workload.rate_eps = rate;
  spec.verify.verify_single_copy_per_link = true;
  return spec;
}

SimResult run_bed(const SimSpec& base, Protocol protocol) {
  SimSpec spec = base;
  spec.protocol = protocol;
  return simulate(spec);
}

class ProtocolCorrectness : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolCorrectness, ExactDeliveryNoDuplicatesNoLoss) {
  const SimResult result = run_bed(bed_spec(400, 60, 50.0), GetParam());
  EXPECT_TRUE(result.drained);
  EXPECT_FALSE(result.overloaded);
  EXPECT_EQ(result.missing_deliveries, 0u);
  EXPECT_EQ(result.spurious_deliveries, 0u);
  EXPECT_EQ(result.duplicate_deliveries, 0u);
  EXPECT_EQ(result.duplicate_link_copies, 0u) << "a link carried an event twice";
  EXPECT_EQ(result.events_published, 60u);
  EXPECT_DOUBLE_EQ(result.oracle_sampled_fraction, 1.0);
  EXPECT_EQ(result.oracle_events_verified, 60u);
  EXPECT_STREQ(result.control_plane, "exact");
  EXPECT_TRUE(result.steps_exact);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolCorrectness,
                         ::testing::Values(Protocol::kLinkMatching, Protocol::kFlooding,
                                           Protocol::kMatchFirst),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kLinkMatching: return "LinkMatching";
                             case Protocol::kFlooding: return "Flooding";
                             case Protocol::kMatchFirst: return "MatchFirst";
                           }
                           return "Unknown";
                         });

TEST(ProtocolLoad, FloodingSendsFarMoreBrokerMessages) {
  const SimSpec base = bed_spec(600, 80, 50.0);
  const auto lm = run_bed(base, Protocol::kLinkMatching);
  const auto fl = run_bed(base, Protocol::kFlooding);
  // Flooding pushes every event over every tree link (38 per event on the
  // Figure 6 spanning trees); link matching uses only links with matching
  // subscribers downstream. With 0.1%-selective subscriptions the gap must
  // be large.
  EXPECT_EQ(fl.broker_messages, 38u * 80u);
  EXPECT_LT(lm.broker_messages * 3, fl.broker_messages);
  // Both deliver the same copies to clients.
  EXPECT_EQ(lm.client_messages, fl.client_messages);
  EXPECT_EQ(lm.deliveries, fl.deliveries);
}

TEST(ProtocolLoad, MatchFirstCarriesDestinationListBytes) {
  const SimSpec base = bed_spec(600, 80, 50.0);
  const auto lm = run_bed(base, Protocol::kLinkMatching);
  const auto mf = run_bed(base, Protocol::kMatchFirst);
  EXPECT_EQ(lm.deliveries, mf.deliveries);
  ASSERT_GT(mf.broker_messages, 0u);
  ASSERT_GT(lm.broker_messages, 0u);
  // Per broker-to-broker message, match-first pays for the embedded
  // destination list; link matching carries only the event.
  const double mf_bytes_per_msg = static_cast<double>(mf.bytes_on_wire) /
                                  static_cast<double>(mf.broker_messages + mf.client_messages);
  const double lm_bytes_per_msg = static_cast<double>(lm.bytes_on_wire) /
                                  static_cast<double>(lm.broker_messages + lm.client_messages);
  EXPECT_GT(mf_bytes_per_msg, lm_bytes_per_msg);
}

TEST(ProtocolLoad, LinkMatchingStepsBoundedByCentralized) {
  // Chart 2's headline: cumulative link-matching steps for short paths stay
  // comparable to one centralized match. Check the aggregate over the run:
  // total link-matching steps across all brokers stays within a small
  // multiple of the pure centralized cost.
  const auto lm = run_bed(bed_spec(1000, 60, 50.0), Protocol::kLinkMatching);
  ASSERT_GT(lm.centralized_steps, 0u);
  EXPECT_LT(lm.total_matching_steps, 8 * lm.centralized_steps);
}

TEST(ProtocolLatency, DeliveriesArriveWithinWanBudget) {
  const auto lm = run_bed(bed_spec(300, 40, 20.0), Protocol::kLinkMatching);
  if (lm.deliveries == 0) GTEST_SKIP() << "no matching subscriptions drawn";
  // Worst WAN path in Figure 6: ~10+25+65+25+10+1 ms plus queueing.
  EXPECT_GT(lm.mean_delivery_latency_ms, 1.0);
  EXPECT_LT(lm.mean_delivery_latency_ms, 400.0);
}

TEST(ProtocolHops, PerHopStatsCoverFigureSixDepths) {
  const auto lm = run_bed(bed_spec(800, 80, 50.0), Protocol::kLinkMatching);
  ASSERT_FALSE(lm.per_hop.empty());
  // Publishers sit at leaf brokers; a subscriber in a remote region is 6-7
  // brokers away, so multiple hop classes must be populated.
  EXPECT_GE(lm.per_hop.rbegin()->first, 4);
  for (const auto& [hops, stats] : lm.per_hop) {
    EXPECT_GE(hops, 1);
    EXPECT_GT(stats.deliveries, 0u);
    // Cumulative steps grow with the path, so they are at least the count.
    EXPECT_GT(stats.cumulative_steps, 0u);
  }
  // Cumulative mean steps must be non-decreasing in hop count... verify the
  // weaker, robust property: the farthest class costs more than the nearest.
  const auto& nearest = lm.per_hop.begin()->second;
  const auto& farthest = lm.per_hop.rbegin()->second;
  EXPECT_GT(farthest.mean_steps(), nearest.mean_steps());
}

TEST(SimSchedule, SpecScheduleIsStrictlyIncreasingAndRoundRobin) {
  Simulation sim(bed_spec(10, 100, 1000.0, 4));
  const auto& schedule = sim.schedule();
  const auto& publishers = sim.publishers();
  ASSERT_EQ(schedule.size(), 100u);
  ASSERT_EQ(publishers.size(), 3u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) EXPECT_GT(schedule[i].time, schedule[i - 1].time);
    EXPECT_EQ(schedule[i].event_index, i);
    EXPECT_EQ(schedule[i].broker, publishers[i % publishers.size()]);
  }
}

TEST(SimSchedule, IdenticalAcrossProtocols) {
  // The whole point of the sub-stream scheme: two specs differing only in
  // protocol (or engine config) see bit-identical workloads and schedules.
  SimSpec a = bed_spec(50, 40, 200.0, 9);
  SimSpec b = a;
  a.protocol = Protocol::kLinkMatching;
  b.protocol = Protocol::kMatchFirst;
  b.engine.threads = 4;
  Simulation sim_a(a), sim_b(b);
  ASSERT_EQ(sim_a.schedule().size(), sim_b.schedule().size());
  for (std::size_t i = 0; i < sim_a.schedule().size(); ++i) {
    EXPECT_EQ(sim_a.schedule()[i].time, sim_b.schedule()[i].time);
    EXPECT_EQ(sim_a.schedule()[i].broker, sim_b.schedule()[i].broker);
    EXPECT_EQ(sim_a.schedule()[i].event_index, sim_b.schedule()[i].event_index);
  }
}

TEST(SimSchedule, BadRateThrows) {
  SimSpec spec = bed_spec(10, 10, 100.0);
  spec.workload.rate_eps = 0.0;
  EXPECT_THROW(Simulation{spec}, std::invalid_argument);
}

TEST(SimMisc, EmptyScheduleIsNoOp) {
  SimSpec spec = bed_spec(10, 0, 100.0);
  const auto result = simulate(spec);
  EXPECT_EQ(result.deliveries, 0u);
  EXPECT_FALSE(result.overloaded);
  EXPECT_EQ(result.events_published, 0u);
}

}  // namespace
}  // namespace gryphon
