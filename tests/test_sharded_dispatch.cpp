// Differential proof for the sharded, batched data plane: partitioning the
// compiled matching state into shards and draining events through
// DispatchBatch must be a pure layout change. Every decision a sharded
// core produces — forward set, local matches (in order), deliver_locally,
// steps — must be bit-identical to the unsharded core's scalar path for
// the same subscription history, across control-plane churn.
#include <gtest/gtest.h>

#include <vector>

#include "broker/broker_core.h"
#include "common/rng.h"
#include "matching/shard_router.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

constexpr SpaceId kSpace0{0};

PstMatcherOptions factored_options() {
  PstMatcherOptions options;
  options.factoring_levels = 2;  // shards partition by factoring key
  return options;
}

/// Field-by-field equality, excluding `shard` (shard is placement, which
/// legitimately differs between shard counts).
void expect_same_decision(const Decision& a, const Decision& b, const char* context) {
  EXPECT_EQ(a.forward, b.forward) << context;
  EXPECT_EQ(a.local_matches, b.local_matches) << context;  // order included
  EXPECT_EQ(a.deliver_locally, b.deliver_locally) << context;
  EXPECT_EQ(a.steps, b.steps) << context;
}

/// Dispatches every (event, root) pair through both cores — sharded via
/// the batch API, unsharded via the scalar shim — and requires identical
/// decisions plus identical match_all sets.
void expect_cores_agree(const BrokerCore& sharded, const BrokerCore& unsharded,
                        const std::vector<Event>& pool) {
  for (int root = 0; root < 3; ++root) {
    DispatchBatch batch;
    for (const Event& e : pool) batch.add(kSpace0, e, BrokerId{root});
    const auto decisions = sharded.dispatch(batch);
    ASSERT_EQ(decisions.size(), pool.size());
    MatchScratch scratch;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const Decision scalar =
          unsharded.dispatch(kSpace0, pool[i], BrokerId{root}, scratch);
      expect_same_decision(decisions[i], scalar, "sharded batch vs unsharded scalar");
    }
  }
  for (const Event& e : pool) {
    EXPECT_EQ(sharded.match_all(kSpace0, e), unsharded.match_all(kSpace0, e));
  }
}

class ShardedDispatchTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = make_synthetic_schema(4, 3);
  BrokerNetwork topo_ = make_line(3, 10, 0, 1);
};

TEST_F(ShardedDispatchTest, BitIdenticalToUnshardedAcrossChurn) {
  BrokerCore sharded(BrokerId{1}, topo_, {schema_}, factored_options(), 5);
  BrokerCore unsharded(BrokerId{1}, topo_, {schema_}, factored_options(), 1);
  EXPECT_EQ(sharded.shard_count(kSpace0), 5u);
  EXPECT_EQ(unsharded.shard_count(kSpace0), 1u);

  Rng rng(2026);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 40; ++i) pool.push_back(events.generate(rng));

  // Phase 1: identical adds into both cores.
  for (std::int64_t i = 0; i < 120; ++i) {
    const auto s = gen.generate(rng);
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    sharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
    unsharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
  }
  expect_cores_agree(sharded, unsharded, pool);

  // Phase 2: churn — remove a third, then add a fresh wave.
  for (std::int64_t i = 0; i < 120; i += 3) {
    ASSERT_TRUE(sharded.remove_subscription(SubscriptionId{i}));
    ASSERT_TRUE(unsharded.remove_subscription(SubscriptionId{i}));
  }
  expect_cores_agree(sharded, unsharded, pool);

  for (std::int64_t i = 200; i < 240; ++i) {
    const auto s = gen.generate(rng);
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    sharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
    unsharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
  }
  expect_cores_agree(sharded, unsharded, pool);
}

TEST_F(ShardedDispatchTest, BatchAgreesWithScalarShimOnSameCore) {
  // On a single core the batch entry point and the scalar shim share the
  // shard layout, so even Decision::shard must agree.
  BrokerCore core(BrokerId{1}, topo_, {schema_}, factored_options(), 3);
  Rng rng(7);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  for (std::int64_t i = 0; i < 80; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{i}, gen.generate(rng),
                          BrokerId{static_cast<BrokerId::rep_type>(rng.below(3))});
  }
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 30; ++i) pool.push_back(events.generate(rng));

  DispatchBatch batch;
  for (const Event& e : pool) batch.add(kSpace0, e, BrokerId{0});
  const auto decisions = core.dispatch(batch);
  ASSERT_EQ(decisions.size(), pool.size());
  MatchScratch scratch;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Decision scalar = core.dispatch(kSpace0, pool[i], BrokerId{0}, scratch);
    expect_same_decision(decisions[i], scalar, "batch vs scalar shim");
    EXPECT_EQ(decisions[i].shard, scalar.shard);
    EXPECT_LT(decisions[i].shard, core.shard_count(kSpace0));
  }
}

TEST_F(ShardedDispatchTest, DecisionsComeBackInAddOrder) {
  // The batch visits items in (space, shard) order for locality, but the
  // decision span is indexed by staging order — decisions()[i] must belong
  // to the i-th add() no matter how the visit order was permuted.
  BrokerCore core(BrokerId{1}, topo_, {schema_}, factored_options(), 4);
  Rng rng(11);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  for (std::int64_t i = 0; i < 60; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{i}, gen.generate(rng),
                          BrokerId{static_cast<BrokerId::rep_type>(rng.below(3))});
  }
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 50; ++i) pool.push_back(events.generate(rng));

  DispatchBatch batch;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    // Alternate tree roots so sorting has more than one key to permute.
    batch.add(kSpace0, pool[i], BrokerId{static_cast<BrokerId::rep_type>(i % 3)});
  }
  const auto decisions = core.dispatch(batch);
  MatchScratch scratch;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const Decision scalar = core.dispatch(
        kSpace0, pool[i], BrokerId{static_cast<BrokerId::rep_type>(i % 3)}, scratch);
    expect_same_decision(decisions[i], scalar, "decision order");
    EXPECT_EQ(decisions[i].shard, scalar.shard);
  }
}

TEST_F(ShardedDispatchTest, UnfactoredSpaceCollapsesToOneShard) {
  // Without factoring there is no key to route by: the shard request is
  // accepted but the space stays a single shard, and dispatch is still
  // identical to a shards=1 core.
  BrokerCore sharded(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 8);
  BrokerCore unsharded(BrokerId{1}, topo_, {schema_}, PstMatcherOptions(), 1);
  EXPECT_EQ(sharded.shard_count(kSpace0), 1u);

  Rng rng(5);
  SubscriptionGenerator gen(schema_, SubscriptionWorkloadConfig{0.9, 0.85, 1.0});
  for (std::int64_t i = 0; i < 50; ++i) {
    const auto s = gen.generate(rng);
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    sharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
    unsharded.add_subscription(kSpace0, SubscriptionId{i}, s, owner);
  }
  EventGenerator events(schema_);
  std::vector<Event> pool;
  for (int i = 0; i < 20; ++i) pool.push_back(events.generate(rng));
  expect_cores_agree(sharded, unsharded, pool);

  DispatchBatch batch;
  for (const Event& e : pool) batch.add(kSpace0, e, BrokerId{0});
  for (const Decision& d : sharded.dispatch(batch)) EXPECT_EQ(d.shard, 0u);
}

TEST(ShardRouterBalance, SmallDomainKeysSpreadAcrossShards) {
  // Regression for the FNV low-bit skew: factoring keys drawn from small
  // integer domains (exactly what make_synthetic_schema produces) used to
  // pile onto a fraction of the shards, leaving others empty at 16 shards.
  // With the splitmix64 finalizer the population must hit every shard and
  // stay within 3x of the mean.
  std::vector<FactoringIndex::Key> keys;
  for (std::int64_t a = 0; a < 12; ++a) {
    for (std::int64_t b = 0; b < 12; ++b) {
      keys.push_back({Value(a), Value(b)});
    }
  }
  for (const std::size_t shards : {8u, 16u}) {
    ShardRouter router(shards);
    std::vector<std::size_t> counts(shards, 0);
    for (const FactoringIndex::Key& key : keys) ++counts[router.shard_of_key(key)];
    std::size_t min_count = keys.size();
    std::size_t max_count = 0;
    for (const std::size_t c : counts) {
      min_count = std::min(min_count, c);
      max_count = std::max(max_count, c);
    }
    EXPECT_GT(min_count, 0u) << shards << " shards: an empty shard serves no events";
    // max <= 3 * mean, i.e. max * shards <= 3 * total.
    EXPECT_LE(max_count * shards, 3 * keys.size()) << shards << " shards";
  }
}

TEST_F(ShardedDispatchTest, BatchValidatesBeforeDispatching) {
  BrokerCore core(BrokerId{1}, topo_, {schema_}, factored_options(), 2);
  EventGenerator events(schema_);
  Rng rng(3);
  const Event e = events.generate(rng);

  DispatchBatch bad_root;
  bad_root.add(kSpace0, e, BrokerId{77});
  EXPECT_THROW(core.dispatch(bad_root), std::invalid_argument);

  DispatchBatch bad_space;
  bad_space.add(SpaceId{9}, e, BrokerId{0});
  EXPECT_THROW(core.dispatch(bad_space), std::invalid_argument);

  DispatchBatch empty;
  EXPECT_TRUE(core.dispatch(empty).empty());
}

}  // namespace
}  // namespace gryphon
