// Chart 3 — "Performance of Matching": average matching time per event for
// the pure (centralized) matching engine as the number of subscriptions
// grows to 25,000+.
//
// Paper context (Section 4.2): the prototype broker matches in about 4 ms
// at 25,000 subscribers on a 200 MHz Pentium Pro. Absolute numbers on
// modern hardware are far smaller; the reproduced shape is sub-linear
// growth of matching time in the number of subscriptions.
#include "bench_util.h"

#include "matching/attribute_order.h"
#include "matching/naive_matcher.h"
#include "matching/pst_matcher.h"

namespace gryphon {
namespace {

void run() {
  bench::print_header("Chart 3: average matching time vs number of subscriptions");
  const auto schema = make_synthetic_schema(10, 5);
  Rng rng(404);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  EventGenerator ev_gen(schema);

  PstMatcherOptions options;
  options.factoring_levels = 2;
  PstMatcher pst(schema, options);
  NaiveMatcher naive;

  std::vector<Event> probes;
  for (int i = 0; i < 2000; ++i) probes.push_back(ev_gen.generate(rng));

  std::printf("%14s %14s %14s %14s %16s\n", "subscriptions", "PST ms/event",
              "PST steps", "naive ms/event", "PST matches/sec");
  std::size_t added = 0;
  for (const std::size_t target : {5000u, 10000u, 15000u, 20000u, 25000u, 30000u}) {
    while (added < target) {
      const auto s = gen.generate(rng);
      pst.add(SubscriptionId{static_cast<std::int64_t>(added)}, s);
      naive.add(SubscriptionId{static_cast<std::int64_t>(added)}, s);
      ++added;
    }
    std::vector<SubscriptionId> out;
    MatchStats stats;
    bench::Stopwatch pst_watch;
    for (const Event& e : probes) {
      out.clear();
      pst.match_into(e, out, &stats);
    }
    const double pst_seconds = pst_watch.seconds();

    bench::Stopwatch naive_watch;
    for (std::size_t i = 0; i < probes.size() / 10; ++i) {  // naive is slow; sample
      out.clear();
      naive.match_into(probes[i], out);
    }
    const double naive_seconds = naive_watch.seconds() * 10.0;

    std::printf("%14zu %14.4f %14.1f %14.4f %16.0f\n", target,
                pst_seconds * 1000.0 / static_cast<double>(probes.size()),
                static_cast<double>(stats.nodes_visited) / static_cast<double>(probes.size()),
                naive_seconds * 1000.0 / static_cast<double>(probes.size()),
                static_cast<double>(probes.size()) / pst_seconds);
  }
  std::printf(
      "\n(The paper reports ~4 ms per match at 25,000 subscriptions on 1997 hardware;\n"
      " the reproduced claim is the sub-linear growth of the PST curve, and the gap\n"
      " to the naive linear scan.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
