// Ablation A2 — the Section 2.1 optimizations: factoring levels,
// trivial-test elimination, and delayed branching.
//
// Measured on both the centralized match (steps per event) and the
// link-matching search (steps per routing decision at a 3-link broker).
#include "bench_util.h"

#include <unordered_map>

#include "matching/attribute_order.h"
#include "matching/psg.h"
#include "matching/pst_matcher.h"
#include "routing/annotated_pst.h"
#include "routing/link_matcher.h"

namespace gryphon {
namespace {

struct Workload {
  SchemaPtr schema = make_synthetic_schema(10, 5);
  std::vector<Subscription> subs;
  std::vector<Event> probes;
  std::unordered_map<SubscriptionId, LinkIndex> links;

  Workload() {
    Rng rng(321);
    SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
    for (int i = 0; i < 8000; ++i) {
      subs.push_back(gen.generate(rng));
      links[SubscriptionId{i}] = LinkIndex{static_cast<int>(rng.below(3))};
    }
    EventGenerator ev_gen(schema);
    for (int i = 0; i < 1000; ++i) probes.push_back(ev_gen.generate(rng));
  }
};

void factoring_sweep(const Workload& workload) {
  bench::print_header("Ablation A2a: factoring levels (central matching, 8000 subscriptions)");
  std::printf("%16s %14s %14s %12s\n", "factoring", "steps/event", "ms/event", "trees");
  for (const std::size_t levels : {0u, 1u, 2u, 3u, 4u}) {
    PstMatcherOptions options;
    options.factoring_levels = levels;
    PstMatcher matcher(workload.schema, options);
    for (std::size_t i = 0; i < workload.subs.size(); ++i) {
      matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, workload.subs[i]);
    }
    std::vector<SubscriptionId> out;
    MatchStats stats;
    bench::Stopwatch watch;
    for (const Event& e : workload.probes) {
      out.clear();
      matcher.match_into(e, out, &stats);
    }
    std::printf("%16zu %14.1f %14.4f %12zu\n", levels,
                static_cast<double>(stats.nodes_visited) /
                    static_cast<double>(workload.probes.size()),
                watch.seconds() * 1000.0 / static_cast<double>(workload.probes.size()),
                matcher.tree_count());
  }
}

void tree_option_sweep(const Workload& workload) {
  bench::print_header(
      "Ablation A2b: trivial-test elimination & delayed branching (link matching)");
  std::printf("%8s %14s %22s %22s\n", "TTE", "delayed-star", "central steps/event",
              "link-match steps/event");
  for (const bool tte : {false, true}) {
    for (const bool delayed : {false, true}) {
      Pst::Options tree_options;
      tree_options.trivial_test_elimination = tte;
      tree_options.delayed_star = delayed;
      Pst tree(workload.schema, identity_order(workload.schema), tree_options);
      for (std::size_t i = 0; i < workload.subs.size(); ++i) {
        tree.add(SubscriptionId{static_cast<std::int64_t>(i)}, workload.subs[i]);
      }
      AnnotatedPst annotated(tree, 3,
                             [&](SubscriptionId id) { return workload.links.at(id); });
      const TritVector init(3, Trit::Maybe);

      std::vector<SubscriptionId> out;
      MatchStats stats;
      std::uint64_t link_steps = 0;
      for (const Event& e : workload.probes) {
        out.clear();
        tree.match(e, out, &stats);
        link_steps += link_match(annotated, e, init).steps;
      }
      std::printf("%8s %14s %22.1f %22.1f\n", tte ? "on" : "off", delayed ? "on" : "off",
                  static_cast<double>(stats.nodes_visited) /
                      static_cast<double>(workload.probes.size()),
                  static_cast<double>(link_steps) /
                      static_cast<double>(workload.probes.size()));
    }
  }
}

void psg_sweep(const Workload& workload) {
  bench::print_header(
      "Ablation A2c: parallel search graph (frozen snapshot) vs live tree");
  std::printf("%12s %12s %12s %14s %14s %14s\n", "subs", "tree nodes", "graph nodes",
              "tree ms/event", "graph ms/event", "graph steps");
  for (const std::size_t subs : {1000u, 4000u, 8000u}) {
    Pst tree(workload.schema, identity_order(workload.schema));
    for (std::size_t i = 0; i < subs; ++i) {
      tree.add(SubscriptionId{static_cast<std::int64_t>(i)}, workload.subs[i]);
    }
    FrozenPsg graph(tree);
    std::vector<SubscriptionId> a, b;
    MatchStats graph_stats;
    bench::Stopwatch tree_watch;
    for (const Event& e : workload.probes) {
      a.clear();
      tree.match(e, a);
    }
    const double tree_seconds = tree_watch.seconds();
    bench::Stopwatch graph_watch;
    for (const Event& e : workload.probes) {
      b.clear();
      graph.match(e, b, &graph_stats);
    }
    const double graph_seconds = graph_watch.seconds();
    std::printf("%12zu %12zu %12zu %14.4f %14.4f %14.1f\n", subs, tree.live_node_count(),
                graph.node_count(),
                tree_seconds * 1000.0 / static_cast<double>(workload.probes.size()),
                graph_seconds * 1000.0 / static_cast<double>(workload.probes.size()),
                static_cast<double>(graph_stats.nodes_visited) /
                    static_cast<double>(workload.probes.size()));
  }
  std::printf(
      "\n(Star-only chains are collapsed structurally, so the frozen graph holds far\n"
      " fewer nodes than the live tree; matching results are identical.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::Workload workload;
  gryphon::factoring_sweep(workload);
  gryphon::tree_option_sweep(workload);
  gryphon::psg_sweep(workload);
  return 0;
}
