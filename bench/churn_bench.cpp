// Control-plane churn benchmark: covering aggregation + delta compilation.
//
// Measures what the covering-aware control plane buys under subscription
// churn, at 10k / 100k / 1M live subscriptions:
//
//   * full-recompile vs delta-compile publish latency (p50/p99 over the
//     same op sequence — "full" pins the space to a single delta segment,
//     so every frontier mutation refreezes the whole space; "delta" slices
//     the frontier so a mutation refreezes ~1/64th),
//   * the covering aggregation ratio (parked / total) the workload yields,
//   * sustained churn ops/sec while reader threads dispatch events against
//     the live snapshots (reported with the same honesty contract as
//     mt_throughput: claims need real cores, so `concurrent.valid` is
//     false on single-core hosts and carries an invalid_reason).
//
// Workload: a "churn" schema with a 1024-value key attribute (always an
// equality test, so the frontier stays wide and compile work is honest
// even at 1M subscriptions) plus seven small-domain attributes tested with
// decaying probability (so covering has real containment to find). Owners
// are remote brokers only: locally-owned subscriptions bypass covering by
// design (they always compile, for client delivery), and the population
// the mechanism targets is the propagated remote table of a transit
// broker. Both modes replay the identical subscription sequence from the
// same seed.
//
//   churn_bench [max_subs] [churn_pairs] [concurrent_seconds]
//
// Defaults: 1000000 150 2.0. CI runs a trimmed point (see tools/ci.sh);
// run with no arguments for the full acceptance measurement. Writes
// BENCH_churn.json into the current directory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "broker/broker_core.h"
#include "common/rng.h"
#include "event/subscription.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon::bench {
namespace {

constexpr SpaceId kSpace0{0};
constexpr std::size_t kKeyDomain = 1024;
constexpr std::size_t kSmallDomain = 4;
constexpr std::size_t kSmallAttributes = 7;
constexpr std::uint64_t kSeed = 20260809;

SchemaPtr make_churn_schema() {
  std::vector<Attribute> attrs;
  Attribute key{"k0", AttributeType::kInt, {}};
  for (std::size_t v = 0; v < kKeyDomain; ++v) {
    key.domain.emplace_back(static_cast<std::int64_t>(v));
  }
  attrs.push_back(std::move(key));
  for (std::size_t a = 1; a <= kSmallAttributes; ++a) {
    Attribute attr{"a" + std::to_string(a), AttributeType::kInt, {}};
    for (std::size_t v = 0; v < kSmallDomain; ++v) {
      attr.domain.emplace_back(static_cast<std::int64_t>(v));
    }
    attrs.push_back(std::move(attr));
  }
  return make_schema("churn", std::move(attrs));
}

/// Key equality always; small attributes tested with decaying probability
/// (0.9, x0.85 per level) so later attributes go don't-care often enough
/// for subsumption to park a healthy fraction of the load.
Subscription generate_subscription(Rng& rng, const SchemaPtr& schema) {
  std::vector<AttributeTest> tests;
  tests.reserve(schema->attribute_count());
  tests.push_back(
      AttributeTest::equals(Value(static_cast<std::int64_t>(rng.below(kKeyDomain)))));
  double p = 0.9;
  for (std::size_t a = 1; a < schema->attribute_count(); ++a) {
    if (rng.chance(p)) {
      tests.push_back(
          AttributeTest::equals(Value(static_cast<std::int64_t>(rng.below(kSmallDomain)))));
    } else {
      tests.push_back(AttributeTest::dont_care());
    }
    p *= 0.85;
  }
  return Subscription(schema, tests);
}

/// A neighbor of the self broker (BrokerId{1} on the 3-line): covering
/// parks only remote-owned subscriptions, so the churn population is
/// drawn entirely from the two remote brokers.
BrokerId remote_owner(Rng& rng) {
  return BrokerId{static_cast<BrokerId::rep_type>(rng.below(2) * 2)};
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double percentile_us(std::vector<std::uint64_t> ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1000.0;
}

struct ModeResult {
  std::size_t segments{0};
  std::size_t frontier{0};
  std::size_t covered{0};
  double load_seconds{0};
  double bulk_publish_seconds{0};
  double churn_seconds{0};
  std::size_t ops{0};
  std::size_t compile_ops{0};
  std::vector<std::uint64_t> op_ns;
  std::vector<std::uint64_t> compile_ns;
  ControlPlaneStats stats;
};

/// Bulk-loads `n_subs` subscriptions (deferred, one publish), then replays
/// `churn_pairs` add+remove pairs with per-op latency sampling. Ops whose
/// publish froze at least one tree are classified as compile ops via the
/// compile_publishes counter (read outside the timed window). When dense
/// covering makes compile ops rare (most churn parks without touching a
/// tree), a trimmed pair budget can draw zero compile samples and the
/// full-vs-delta comparison goes vacuous — so the loop keeps replaying
/// pairs (up to `max_pairs`) until it holds `min_compile_samples` of them.
ModeResult run_mode(const SchemaPtr& schema, const BrokerNetwork& topo, std::size_t n_subs,
                    std::size_t churn_pairs, const ControlPlaneOptions& control,
                    std::size_t min_compile_samples = 0, std::size_t max_pairs = 0) {
  if (max_pairs < churn_pairs) max_pairs = churn_pairs;
  BrokerCore core(BrokerId{1}, topo, {schema}, PstMatcherOptions(), 1, control);
  core.control_plane().assert_serialized();
  Rng rng(kSeed);

  ModeResult r;
  Stopwatch load;
  for (std::size_t i = 0; i < n_subs; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{static_cast<std::int64_t>(i)},
                          generate_subscription(rng, schema),
                          remote_owner(rng),
                          SnapshotPolicy::kDefer);
  }
  r.load_seconds = load.seconds();
  Stopwatch publish;
  core.publish_space(kSpace0);
  r.bulk_publish_seconds = publish.seconds();

  const auto timed_op = [&](auto&& op) {
    const std::uint64_t before = core.control_plane_stats().compile_publishes;
    const std::uint64_t t0 = now_ns();
    op();
    const std::uint64_t elapsed = now_ns() - t0;
    const bool compiled = core.control_plane_stats().compile_publishes > before;
    r.op_ns.push_back(elapsed);
    if (compiled) r.compile_ns.push_back(elapsed);
    ++r.ops;
    if (compiled) ++r.compile_ops;
  };

  Stopwatch churn;
  for (std::size_t pair = 0;
       pair < churn_pairs || (r.compile_ops < min_compile_samples && pair < max_pairs);
       ++pair) {
    const SubscriptionId id{static_cast<std::int64_t>(n_subs + pair)};
    const Subscription s = generate_subscription(rng, schema);
    const BrokerId owner = remote_owner(rng);
    timed_op([&] { core.add_subscription(kSpace0, id, s, owner); });
    timed_op([&] { core.remove_subscription(id); });
  }
  r.churn_seconds = churn.seconds();

  r.segments = core.segment_count(kSpace0);
  r.frontier = core.frontier_count(kSpace0);
  r.covered = core.covered_count(kSpace0);
  r.stats = core.control_plane_stats();
  return r;
}

struct ConcurrentResult {
  bool valid{false};
  std::string invalid_reason;
  std::size_t subscriptions{0};
  unsigned readers{0};
  double seconds{0};
  std::uint64_t churn_ops{0};
  std::uint64_t events_dispatched{0};
  std::uint64_t local_matches{0};
};

/// Sustained churn absorption while the data plane stays under load:
/// reader threads dispatch events against the live snapshots (pin /
/// match / release, no locks) while the control plane replays add+remove
/// pairs for `duration_seconds`.
ConcurrentResult run_concurrent(const SchemaPtr& schema, const BrokerNetwork& topo,
                                std::size_t n_subs, const ControlPlaneOptions& control,
                                double duration_seconds) {
  ConcurrentResult r;
  r.subscriptions = n_subs;
  r.readers = 2;
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 2) {
    r.valid = true;
  } else {
    r.invalid_reason =
        "hardware_concurrency < 2: readers and the churn writer time-slice one "
        "core, so the sustained-churn-under-load figure measures scheduling, "
        "not concurrency";
  }

  BrokerCore core(BrokerId{1}, topo, {schema}, PstMatcherOptions(), 1, control);
  core.control_plane().assert_serialized();
  Rng rng(kSeed + 1);
  for (std::size_t i = 0; i < n_subs; ++i) {
    core.add_subscription(kSpace0, SubscriptionId{static_cast<std::int64_t>(i)},
                          generate_subscription(rng, schema),
                          remote_owner(rng),
                          SnapshotPolicy::kDefer);
  }
  core.publish_space(kSpace0);

  std::vector<Event> pool;
  {
    EventGenerator events(schema);
    for (int i = 0; i < 256; ++i) pool.push_back(events.generate(rng));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> dispatched{0};
  std::atomic<std::uint64_t> matched{0};
  std::vector<std::thread> readers;
  readers.reserve(r.readers);
  for (unsigned t = 0; t < r.readers; ++t) {
    readers.emplace_back([&, t] {
      MatchScratch scratch;
      std::uint64_t local_dispatched = 0;
      std::uint64_t local_matched = 0;
      for (std::size_t i = t; !stop.load(std::memory_order_relaxed); ++i) {
        const Decision d =
            core.dispatch(kSpace0, pool[i % pool.size()], BrokerId{0}, scratch);
        ++local_dispatched;
        local_matched += d.local_matches.size();
      }
      dispatched.fetch_add(local_dispatched, std::memory_order_relaxed);
      matched.fetch_add(local_matched, std::memory_order_relaxed);
    });
  }

  Stopwatch clock;
  std::int64_t next_id = static_cast<std::int64_t>(n_subs);
  while (clock.seconds() < duration_seconds) {
    const SubscriptionId id{next_id++};
    core.add_subscription(kSpace0, id, generate_subscription(rng, schema),
                          remote_owner(rng));
    core.remove_subscription(id);
    r.churn_ops += 2;
  }
  r.seconds = clock.seconds();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  r.events_dispatched = dispatched.load();
  r.local_matches = matched.load();
  return r;
}

void print_mode(const char* mode, const ModeResult& r) {
  std::printf(
      "  %-5s segments=%zu frontier=%zu covered=%zu load=%.2fs bulk_publish=%.3fs\n"
      "        churn ops=%zu (compile=%zu) op p50/p99=%.1f/%.1f us "
      "compile p50/p99=%.1f/%.1f us\n",
      mode, r.segments, r.frontier, r.covered, r.load_seconds, r.bulk_publish_seconds,
      r.ops, r.compile_ops, percentile_us(r.op_ns, 0.50), percentile_us(r.op_ns, 0.99),
      percentile_us(r.compile_ns, 0.50), percentile_us(r.compile_ns, 0.99));
}

void write_mode_json(std::FILE* out, const char* mode, const ModeResult& r) {
  std::fprintf(out,
               "      \"%s\": {\n"
               "        \"segments\": %zu,\n"
               "        \"load_seconds\": %.4f,\n"
               "        \"bulk_publish_seconds\": %.6f,\n"
               "        \"churn_ops\": %zu,\n"
               "        \"compile_ops\": %zu,\n"
               "        \"churn_ops_per_sec\": %.1f,\n"
               "        \"op_p50_us\": %.2f,\n"
               "        \"op_p99_us\": %.2f,\n"
               "        \"compile_p50_us\": %.2f,\n"
               "        \"compile_p99_us\": %.2f,\n"
               "        \"delta_publishes\": %llu,\n"
               "        \"full_publishes\": %llu,\n"
               "        \"covering_only_publishes\": %llu,\n"
               "        \"segments_compiled\": %llu,\n"
               "        \"segments_reused\": %llu\n"
               "      }",
               mode, r.segments, r.load_seconds, r.bulk_publish_seconds, r.ops,
               r.compile_ops,
               r.churn_seconds > 0 ? static_cast<double>(r.ops) / r.churn_seconds : 0.0,
               percentile_us(r.op_ns, 0.50), percentile_us(r.op_ns, 0.99),
               percentile_us(r.compile_ns, 0.50), percentile_us(r.compile_ns, 0.99),
               static_cast<unsigned long long>(r.stats.delta_publishes),
               static_cast<unsigned long long>(r.stats.full_publishes),
               static_cast<unsigned long long>(r.stats.covering_only_publishes),
               static_cast<unsigned long long>(r.stats.segments_compiled),
               static_cast<unsigned long long>(r.stats.segments_reused));
}

int run(int argc, char** argv) {
  const std::size_t max_subs =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 1000000;
  const std::size_t churn_pairs =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10)) : 150;
  const double concurrent_seconds = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;
  if (max_subs == 0 || churn_pairs == 0) {
    std::fprintf(stderr, "usage: churn_bench [max_subs] [churn_pairs] [concurrent_seconds]\n");
    return 2;
  }

  std::vector<std::size_t> sizes;
  for (const std::size_t n : {std::size_t{10000}, std::size_t{100000}, std::size_t{1000000}}) {
    if (n <= max_subs) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_subs);

  const SchemaPtr schema = make_churn_schema();
  const BrokerNetwork topo = make_line(3, 10, 0, 1);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("churn_bench: sizes up to %zu, %zu churn pairs, hw=%u\n", sizes.back(),
              churn_pairs, hw);

  struct SizePoint {
    std::size_t n;
    ModeResult full;
    ModeResult delta;
  };
  std::vector<SizePoint> points;
  for (const std::size_t n : sizes) {
    print_header("churn @ " + std::to_string(n) + " subscriptions");

    // Full-recompile baseline: the slice layout is pinned to one segment,
    // so every frontier mutation refreezes the whole space. Trim the pair
    // count at 1M — each compile op is a whole-frontier freeze — but keep
    // replaying (up to the untrimmed budget) until at least 8 ops actually
    // compiled: dense covering parks most churn, and a fixed trim can
    // otherwise sample zero compiles.
    ControlPlaneOptions full_control;
    full_control.delta_segment_target = n + 1;
    full_control.max_delta_segments = 1;
    const std::size_t full_pairs = n >= 1000000 ? std::min<std::size_t>(churn_pairs, 10)
                                                : churn_pairs;
    SizePoint point;
    point.n = n;
    point.full = run_mode(schema, topo, n, full_pairs, full_control,
                          full_pairs < churn_pairs ? 8 : 0, churn_pairs);
    print_mode("full", point.full);

    // Delta mode: target sized so the frontier spreads over ~64 slices.
    ControlPlaneOptions delta_control;
    delta_control.delta_segment_target = std::max<std::size_t>(256, n / 512);
    delta_control.max_delta_segments = 64;
    point.delta = run_mode(schema, topo, n, churn_pairs, delta_control);
    print_mode("delta", point.delta);

    const double full_p99 = percentile_us(point.full.compile_ns, 0.99);
    const double delta_p99 = percentile_us(point.delta.compile_ns, 0.99);
    if (delta_p99 > 0) {
      std::printf("  compile p99 speedup (full/delta): %.1fx\n", full_p99 / delta_p99);
    }
    points.push_back(std::move(point));
  }

  print_header("concurrent churn under matching load");
  const std::size_t concurrent_subs = std::min<std::size_t>(max_subs, 100000);
  ControlPlaneOptions concurrent_control;
  concurrent_control.delta_segment_target = std::max<std::size_t>(256, concurrent_subs / 512);
  concurrent_control.max_delta_segments = 64;
  const ConcurrentResult conc =
      run_concurrent(schema, topo, concurrent_subs, concurrent_control, concurrent_seconds);
  std::printf("  subs=%zu readers=%u %.2fs: %.0f churn ops/s, %.0f dispatches/s%s\n",
              conc.subscriptions, conc.readers, conc.seconds,
              static_cast<double>(conc.churn_ops) / conc.seconds,
              static_cast<double>(conc.events_dispatched) / conc.seconds,
              conc.valid ? "" : "  [INVALID: single-core host]");

  std::FILE* out = std::fopen("BENCH_churn.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "churn_bench: cannot write BENCH_churn.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"churn\",\n"
               "  \"description\": \"covering aggregation + delta compilation under "
               "subscription churn; full pins one delta segment (whole-space refreeze), "
               "delta slices the frontier over up to 64 segments\",\n"
               "  \"schema\": \"k0:int(1024) + 7x int(4), key always equality\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"churn_pairs\": %zu,\n"
               "  \"sizes\": [\n",
               hw, churn_pairs);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SizePoint& p = points[i];
    const std::size_t total = p.delta.frontier + p.delta.covered;
    const double full_p99 = percentile_us(p.full.compile_ns, 0.99);
    const double delta_p99 = percentile_us(p.delta.compile_ns, 0.99);
    std::fprintf(out,
                 "    {\n"
                 "      \"subscriptions\": %zu,\n"
                 "      \"frontier\": %zu,\n"
                 "      \"covered\": %zu,\n"
                 "      \"covering_ratio\": %.4f,\n",
                 p.n, p.delta.frontier, p.delta.covered,
                 total > 0 ? static_cast<double>(p.delta.covered) / static_cast<double>(total)
                           : 0.0);
    write_mode_json(out, "full", p.full);
    std::fprintf(out, ",\n");
    write_mode_json(out, "delta", p.delta);
    std::fprintf(out,
                 ",\n      \"compile_p99_speedup\": %.2f\n    }%s\n",
                 delta_p99 > 0 ? full_p99 / delta_p99 : 0.0,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"concurrent\": {\n"
               "    \"valid\": %s,\n"
               "    \"invalid_reason\": \"%s\",\n"
               "    \"subscriptions\": %zu,\n"
               "    \"reader_threads\": %u,\n"
               "    \"duration_seconds\": %.2f,\n"
               "    \"churn_ops_per_sec\": %.1f,\n"
               "    \"events_dispatched_per_sec\": %.1f,\n"
               "    \"local_matches\": %llu\n"
               "  }\n"
               "}\n",
               conc.valid ? "true" : "false", conc.invalid_reason.c_str(),
               conc.subscriptions, conc.readers, conc.seconds,
               static_cast<double>(conc.churn_ops) / conc.seconds,
               static_cast<double>(conc.events_dispatched) / conc.seconds,
               static_cast<unsigned long long>(conc.local_matches));
  std::fclose(out);
  std::printf("\nwrote BENCH_churn.json\n");
  return 0;
}

}  // namespace
}  // namespace gryphon::bench

int main(int argc, char** argv) { return gryphon::bench::run(argc, argv); }
