// Internet-scale simulation campaign (BENCH_sim_scale.json).
//
// Sweeps the parallel discrete-event engine over the scale topology
// families — Figure 6, fat-tree, Waxman, and the multi-region WAN up to
// 1000 brokers with 1,000,000 subscriptions — running all three routing
// protocols at every point. Each point reports serial and parallel engine
// wall clocks from the SAME materialized instance (one control-plane
// build), the serial-vs-parallel equivalence verdict (same_outcome over
// every deterministic SimResult field), and the oracle-sampling fraction
// actually used.
//
// Honesty gate: the parallel speedup is only asserted meaningful when the
// host has >= 4 hardware threads; on smaller hosts the JSON carries
// scaling_valid=false with the reason, and the equivalence gate (which
// needs no parallelism to be meaningful) still runs.
//
//   $ ./sim_scale_bench [--ci] [--out PATH]
//
// --ci runs the reduced sweep (~200 brokers) used by the tools/ci.sh
// sim-scale leg; the full sweep is the published campaign.
#include "bench_util.h"

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace gryphon {
namespace {

struct ProtocolRow {
  Protocol protocol{Protocol::kLinkMatching};
  SimResult serial;
  SimResult parallel;
  bool equivalent{false};
  double build_seconds{0.0};
};

struct SweepPoint {
  std::string name;
  SimSpec spec;
  std::vector<ProtocolRow> rows;
  std::size_t brokers{0};
  std::size_t clients{0};
};

SweepPoint run_point(const std::string& name, SimSpec spec, std::size_t parallel_threads) {
  SweepPoint point;
  point.name = name;
  point.spec = spec;
  for (const Protocol protocol :
       {Protocol::kLinkMatching, Protocol::kFlooding, Protocol::kMatchFirst}) {
    ProtocolRow row;
    row.protocol = protocol;
    SimSpec run_spec = spec;
    run_spec.protocol = protocol;
    bench::Stopwatch build_watch;
    Simulation sim(std::move(run_spec));
    row.build_seconds = build_watch.seconds();
    point.brokers = sim.network().broker_count();
    point.clients = sim.network().client_count();
    row.serial = sim.run_with_threads(1);
    row.parallel = sim.run_with_threads(parallel_threads);
    row.equivalent = same_outcome(row.serial, row.parallel);
    std::printf(
        "  %-14s %-14s serial %7.2fs  parallel(%zu) %7.2fs  speedup %5.2fx  %s\n",
        name.c_str(), to_string(protocol), row.serial.wall_seconds, parallel_threads,
        row.parallel.wall_seconds,
        row.parallel.wall_seconds > 0 ? row.serial.wall_seconds / row.parallel.wall_seconds
                                      : 0.0,
        row.equivalent ? "identical" : "MISMATCH");
    point.rows.push_back(std::move(row));
  }
  return point;
}

void write_json(const char* path, const std::vector<SweepPoint>& points, bool ci_mode,
                std::size_t parallel_threads, unsigned hw, bool scaling_valid) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "sim_scale_bench: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"sim_scale\",\n");
  std::fprintf(f,
               "  \"description\": \"parallel discrete-event engine campaign: serial vs "
               "parallel wall clock and bit-equivalence across scale topologies and all "
               "three routing protocols\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", ci_mode ? "ci" : "full");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"parallel_threads\": %zu,\n", parallel_threads);
  std::fprintf(f, "  \"scaling_valid\": %s,\n", scaling_valid ? "true" : "false");
  if (scaling_valid) {
    std::fprintf(f, "  \"scaling_reason\": \"host has >= 4 hardware threads\",\n");
  } else {
    std::fprintf(f,
                 "  \"scaling_reason\": \"hardware_concurrency=%u < 4: parallel wall "
                 "clock measures synchronization overhead, not scaling; equivalence "
                 "results remain valid\",\n",
                 hw);
  }
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", p.name.c_str());
    std::fprintf(f, "      \"topology\": \"%s\",\n", to_string(p.spec.topology.kind));
    std::fprintf(f, "      \"brokers\": %zu,\n", p.brokers);
    std::fprintf(f, "      \"clients\": %zu,\n", p.clients);
    std::fprintf(f, "      \"subscriptions\": %zu,\n", p.spec.workload.subscriptions);
    std::fprintf(f, "      \"events\": %zu,\n", p.spec.workload.events);
    std::fprintf(f, "      \"rate_eps\": %.1f,\n", p.spec.workload.rate_eps);
    std::fprintf(f, "      \"churn_rate_eps\": %.1f,\n", p.spec.workload.churn_rate_eps);
    std::fprintf(f, "      \"link_mtbf_seconds\": %.2f,\n",
                 p.spec.workload.link_mtbf_seconds);
    std::fprintf(f, "      \"protocols\": [\n");
    for (std::size_t r = 0; r < p.rows.size(); ++r) {
      const ProtocolRow& row = p.rows[r];
      const SimResult& s = row.serial;
      std::fprintf(f, "        {\n");
      std::fprintf(f, "          \"protocol\": \"%s\",\n", to_string(row.protocol));
      std::fprintf(f, "          \"control_plane\": \"%s\",\n", s.control_plane);
      std::fprintf(f, "          \"steps_exact\": %s,\n", s.steps_exact ? "true" : "false");
      std::fprintf(f, "          \"build_seconds\": %.3f,\n", row.build_seconds);
      std::fprintf(f, "          \"serial_wall_seconds\": %.4f,\n", s.wall_seconds);
      std::fprintf(f, "          \"parallel_wall_seconds\": %.4f,\n",
                   row.parallel.wall_seconds);
      std::fprintf(f, "          \"speedup\": %.3f,\n",
                   row.parallel.wall_seconds > 0
                       ? s.wall_seconds / row.parallel.wall_seconds
                       : 0.0);
      std::fprintf(f, "          \"serial_parallel_identical\": %s,\n",
                   row.equivalent ? "true" : "false");
      std::fprintf(f, "          \"events_published\": %zu,\n", s.events_published);
      std::fprintf(f, "          \"deliveries\": %llu,\n",
                   static_cast<unsigned long long>(s.deliveries));
      std::fprintf(f, "          \"broker_messages\": %llu,\n",
                   static_cast<unsigned long long>(s.broker_messages));
      std::fprintf(f, "          \"client_messages\": %llu,\n",
                   static_cast<unsigned long long>(s.client_messages));
      std::fprintf(f, "          \"bytes_on_wire\": %llu,\n",
                   static_cast<unsigned long long>(s.bytes_on_wire));
      std::fprintf(f, "          \"total_matching_steps\": %llu,\n",
                   static_cast<unsigned long long>(s.total_matching_steps));
      std::fprintf(f, "          \"max_utilization\": %.4f,\n", s.max_utilization);
      std::fprintf(f, "          \"mean_delivery_latency_ms\": %.2f,\n",
                   s.mean_delivery_latency_ms);
      std::fprintf(f, "          \"overloaded\": %s,\n", s.overloaded ? "true" : "false");
      std::fprintf(f, "          \"oracle_sampled_fraction\": %.6f,\n",
                   s.oracle_sampled_fraction);
      std::fprintf(f, "          \"oracle_events_verified\": %zu,\n",
                   s.oracle_events_verified);
      std::fprintf(f, "          \"missing_deliveries\": %llu,\n",
                   static_cast<unsigned long long>(s.missing_deliveries));
      std::fprintf(f, "          \"spurious_deliveries\": %llu,\n",
                   static_cast<unsigned long long>(s.spurious_deliveries));
      std::fprintf(f, "          \"duplicate_deliveries\": %llu,\n",
                   static_cast<unsigned long long>(s.duplicate_deliveries));
      std::fprintf(f, "          \"churn_subscribes\": %llu,\n",
                   static_cast<unsigned long long>(s.churn_subscribes));
      std::fprintf(f, "          \"link_outages\": %llu\n",
                   static_cast<unsigned long long>(s.link_outages));
      std::fprintf(f, "        }%s\n", r + 1 < p.rows.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

int run(bool ci_mode, const char* out_path) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool scaling_valid = hw >= 4;
  const std::size_t parallel_threads =
      scaling_valid ? std::min<std::size_t>(hw, 8) : 2;
  bench::print_header(ci_mode ? "sim-scale campaign (reduced CI sweep)"
                              : "sim-scale campaign (full sweep)");
  std::printf("hardware threads: %u, parallel engine threads: %zu%s\n\n", hw,
              parallel_threads,
              scaling_valid ? "" : "  (speedup not meaningful on this host)");

  std::vector<SweepPoint> points;

  if (ci_mode) {
    // Reduced sweep: the exact-plane Figure 6 differential plus one
    // aggregate-plane WAN point of ~200 brokers.
    SimSpec fig6 = bench::paper_spec(10, 5, 0.85, 2000, 200, /*seed=*/501);
    fig6.workload.rate_eps = 100.0;
    points.push_back(run_point("fig6-39", fig6, parallel_threads));

    SimSpec wan;
    wan.seed = 502;
    wan.topology.kind = TopologyKind::kWan;
    wan.topology.wan.regions = 8;
    wan.topology.wan.brokers_per_region = 25;
    wan.workload.subscriptions = 20000;
    wan.workload.events = 200;
    wan.workload.rate_eps = 100.0;
    points.push_back(run_point("wan-200", wan, parallel_threads));
  } else {
    SimSpec fig6 = bench::paper_spec(10, 5, 0.85, 10000, 2000, /*seed=*/601);
    fig6.workload.rate_eps = 200.0;
    points.push_back(run_point("fig6-39", fig6, parallel_threads));

    // Figure 6 with the in-sim dynamics on: subscription churn plus link
    // down/up. Verification is off under churn (publish-time oracle), so
    // this point demonstrates the dynamics and the equivalence gate only.
    SimSpec dynamics = bench::paper_spec(10, 5, 0.85, 4000, 1000, /*seed=*/602);
    dynamics.workload.rate_eps = 100.0;
    dynamics.workload.churn_rate_eps = 100.0;
    dynamics.workload.link_mtbf_seconds = 3.0;
    dynamics.workload.link_mttr_seconds = 0.5;
    points.push_back(run_point("fig6-dynamics", dynamics, parallel_threads));

    SimSpec fat_tree;
    fat_tree.seed = 603;
    fat_tree.topology.kind = TopologyKind::kFatTree;
    fat_tree.topology.fat_tree.pods = 12;  // 180 brokers, 720 clients
    fat_tree.workload.subscriptions = 50000;
    fat_tree.workload.events = 1000;
    fat_tree.workload.rate_eps = 200.0;
    points.push_back(run_point("fattree-180", fat_tree, parallel_threads));

    SimSpec waxman;
    waxman.seed = 604;
    waxman.topology.kind = TopologyKind::kWaxman;
    waxman.topology.waxman.brokers = 500;
    waxman.workload.subscriptions = 200000;
    waxman.workload.events = 500;
    waxman.workload.rate_eps = 100.0;
    points.push_back(run_point("waxman-500", waxman, parallel_threads));

    // The headline point: 1000 brokers, 10,000 clients, 1M subscriptions.
    SimSpec wan;
    wan.seed = 605;
    wan.topology.kind = TopologyKind::kWan;
    wan.topology.wan.regions = 40;
    wan.topology.wan.brokers_per_region = 25;
    wan.workload.subscriptions = 1000000;
    wan.workload.events = 500;
    wan.workload.rate_eps = 100.0;
    points.push_back(run_point("wan-1000", wan, parallel_threads));
  }

  bool all_equivalent = true;
  bool all_clean = true;
  for (const SweepPoint& p : points) {
    for (const ProtocolRow& row : p.rows) {
      all_equivalent &= row.equivalent;
      all_clean &= row.serial.missing_deliveries == 0 &&
                   row.serial.spurious_deliveries == 0 &&
                   row.serial.duplicate_deliveries == 0;
    }
  }
  std::printf("\nequivalence: %s, oracle: %s\n",
              all_equivalent ? "all serial/parallel runs identical" : "MISMATCH",
              all_clean ? "no missing/spurious/duplicate deliveries" : "VIOLATIONS");

  write_json(out_path, points, ci_mode, parallel_threads, hw, scaling_valid);
  return all_equivalent && all_clean ? 0 : 1;
}

}  // namespace
}  // namespace gryphon

int main(int argc, char** argv) {
  bool ci_mode = false;
  const char* out_path = "BENCH_sim_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci") == 0) {
      ci_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--ci] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return gryphon::run(ci_mode, out_path);
}
