// Ablation A1 — attribute ordering in the parallel search tree.
//
// The paper (Section 2): "performance seems to be better if the attributes
// near the root are chosen to have the fewest number of subscriptions
// labeled with a *". Compare matching steps and wall time for: the schema
// declaration order, the paper's heuristic, and the adversarial reverse of
// the heuristic, on a workload whose selective attributes come last.
#include "bench_util.h"

#include <algorithm>

#include "matching/attribute_order.h"
#include "matching/pst_matcher.h"

namespace gryphon {
namespace {

void run() {
  bench::print_header("Ablation A1: PST attribute ordering");
  const auto schema = make_synthetic_schema(10, 4);
  Rng rng(99);

  // Adversarial workload: attribute selectivity increases with index, so
  // the schema order puts the least selective attribute at the root.
  std::vector<Subscription> subs;
  for (int i = 0; i < 10000; ++i) {
    std::vector<AttributeTest> tests(10);
    for (std::size_t a = 0; a < 10; ++a) {
      const double p_non_star = 0.05 + 0.09 * static_cast<double>(a);
      if (rng.chance(p_non_star)) {
        tests[a] = AttributeTest::equals(Value(static_cast<int>(rng.below(4))));
      }
    }
    subs.emplace_back(schema, tests);
  }
  EventGenerator ev_gen(schema);
  std::vector<Event> probes;
  for (int i = 0; i < 2000; ++i) probes.push_back(ev_gen.generate(rng));

  const auto heuristic = order_by_fewest_dont_cares(schema, subs);
  auto reversed = heuristic;
  std::reverse(reversed.begin(), reversed.end());

  std::printf("%24s %14s %14s\n", "order", "steps/event", "ms/event");
  const auto measure = [&](const char* label, std::vector<std::size_t> order) {
    PstMatcherOptions options;
    options.attribute_order = std::move(order);
    PstMatcher matcher(schema, options);
    for (std::size_t i = 0; i < subs.size(); ++i) {
      matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, subs[i]);
    }
    std::vector<SubscriptionId> out;
    MatchStats stats;
    bench::Stopwatch watch;
    for (const Event& e : probes) {
      out.clear();
      matcher.match_into(e, out, &stats);
    }
    std::printf("%24s %14.1f %14.4f\n", label,
                static_cast<double>(stats.nodes_visited) / static_cast<double>(probes.size()),
                watch.seconds() * 1000.0 / static_cast<double>(probes.size()));
  };

  measure("schema order", identity_order(schema));
  measure("heuristic (paper)", heuristic);
  measure("reverse heuristic", reversed);
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
