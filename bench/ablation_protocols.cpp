// Ablation A3 — network cost profile of the three routing strategies at a
// fixed, sustainable publish rate: broker-to-broker copies, bytes on wire
// (match-first pays for embedded destination lists), total matching steps,
// and the busiest broker's utilization.
#include "bench_util.h"

namespace gryphon {
namespace {

void run() {
  bench::print_header(
      "Ablation A3: protocol cost profile (Figure 6, 500 events @ 100/sec)");
  std::printf("%14s %15s %13s %13s %14s %12s %10s\n", "subscriptions", "protocol",
              "broker msgs", "client msgs", "bytes on wire", "match steps", "max util");
  for (const std::size_t subs : {500u, 2000u, 8000u}) {
    const SimSpec base = bench::paper_spec(10, 5, 0.85, subs, 500, /*seed=*/42 + subs);
    for (const Protocol protocol :
         {Protocol::kLinkMatching, Protocol::kFlooding, Protocol::kMatchFirst}) {
      SimSpec spec = base;
      spec.protocol = protocol;
      spec.matcher.factoring_levels = 2;
      spec.workload.rate_eps = 100.0;
      const SimResult result = simulate(spec);
      std::printf("%14zu %15s %13llu %13llu %14llu %12llu %9.3f%s\n", subs,
                  to_string(protocol),
                  static_cast<unsigned long long>(result.broker_messages),
                  static_cast<unsigned long long>(result.client_messages),
                  static_cast<unsigned long long>(result.bytes_on_wire),
                  static_cast<unsigned long long>(result.total_matching_steps),
                  result.max_utilization,
                  result.missing_deliveries + result.spurious_deliveries +
                              result.duplicate_deliveries >
                          0
                      ? "  !! delivery mismatch"
                      : "");
    }
  }
  std::printf(
      "\n(Link matching: fewest broker messages and smallest bytes/message; flooding:\n"
      " every tree link carries every event; match-first: few messages but each\n"
      " carries the destination list, and all matching cost sits at the publisher.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
