// Shared helpers for the chart-reproduction benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "sim/simulation.h"

namespace gryphon::bench {

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's simulation workload (Section 4.1) as a declarative spec:
/// random equality subscriptions over the synthetic schema, with per-region
/// locality of interest on the Figure 6 topology, and zipf-valued events.
inline SimSpec paper_spec(std::size_t attributes, std::size_t values, double decay,
                          std::size_t n_subscriptions, std::size_t n_events,
                          std::uint64_t seed) {
  SimSpec spec;
  spec.seed = seed;
  spec.attributes = attributes;
  spec.values_per_attribute = values;
  spec.topology.kind = TopologyKind::kFigure6;
  spec.workload.subscriptions = n_subscriptions;
  spec.workload.events = n_events;
  spec.workload.subscription_config = SubscriptionWorkloadConfig{0.98, decay, 1.0};
  return spec;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace gryphon::bench
