// Shared helpers for the chart-reproduction benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "sim/simulation.h"
#include "topology/builders.h"
#include "workload/generators.h"

namespace gryphon::bench {

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's simulation workload (Section 4.1): random equality
/// subscriptions over the synthetic schema, with per-region locality of
/// interest on the Figure 6 topology, and zipf-valued events.
struct PaperWorkload {
  Figure6Topology topo;
  SchemaPtr schema;
  SubscriptionWorkloadConfig sub_config;
  std::vector<SimSubscription> subscriptions;
  std::vector<Event> events;

  PaperWorkload(std::size_t attributes, std::size_t values, double decay,
                std::size_t n_subscriptions, std::size_t n_events, std::uint64_t seed)
      : topo(make_figure6()),
        schema(make_synthetic_schema(attributes, values)),
        sub_config{0.98, decay, 1.0} {
    Rng rng(seed);
    SubscriptionGenerator gen(schema, sub_config);
    subscriptions.reserve(n_subscriptions);
    for (std::size_t i = 0; i < n_subscriptions; ++i) {
      const ClientId client = topo.subscribers[rng.below(topo.subscribers.size())];
      const auto region = static_cast<std::uint32_t>(
          topo.region_of[static_cast<std::size_t>(topo.network.client_home(client).value)]);
      const auto perm = locality_permutation(values, region);
      subscriptions.push_back(SimSubscription{SubscriptionId{static_cast<std::int64_t>(i)},
                                              gen.generate(rng, &perm), client});
    }
    EventGenerator ev_gen(schema);
    events.reserve(n_events);
    for (std::size_t i = 0; i < n_events; ++i) events.push_back(ev_gen.generate(rng));
  }
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace gryphon::bench
