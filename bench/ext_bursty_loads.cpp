// Extension (paper Section 6, future work): behaviour under bursty loads.
//
// "since many publish/subscribe applications exhibit peak activity periods,
// we are examining how our protocol performs with bursty message loads."
// Compare Poisson arrivals against an ON/OFF bursty process of equal mean
// rate: peak backlog and the mean rate at which the network first
// overloads, for link matching and flooding.
#include "bench_util.h"

#include "sim/saturation.h"

namespace gryphon {
namespace {

void run() {
  bench::print_header("Extension: Poisson vs bursty (ON/OFF) arrivals, link matching");
  SimSpec base = bench::paper_spec(10, 5, 0.85, 2000, 500, /*seed=*/11);
  base.matcher.factoring_levels = 2;
  base.verify.verify_deliveries = false;
  base.limits.drain_limit = ticks_from_seconds(10);

  // One prepared simulation per (protocol, arrival process); rate sweeps
  // reuse the instance via run_at_rate. 20% duty cycle: the spec's ON rate
  // is mean_rate * (on + off) / on = 5x the mean rate.
  const auto make_sim = [&](Protocol protocol, bool bursty) {
    SimSpec spec = base;
    spec.protocol = protocol;
    if (bursty) spec.workload.arrivals = ArrivalSpec{ArrivalSpec::Kind::kBursty, 0.04, 0.16};
    return Simulation(std::move(spec));
  };

  std::printf("%15s %12s %14s %14s %12s\n", "protocol", "mean rate", "arrivals",
              "max backlog", "overloaded");
  for (const Protocol protocol : {Protocol::kLinkMatching, Protocol::kFlooding}) {
    for (const bool bursty : {false, true}) {
      Simulation sim = make_sim(protocol, bursty);
      for (const double rate : {500.0, 2000.0, 8000.0}) {
        const auto result = sim.run_at_rate(rate, /*salt=*/5);
        std::printf("%15s %12.0f %14s %14llu %12s\n", to_string(protocol), rate,
                    bursty ? "bursty 20%" : "poisson",
                    static_cast<unsigned long long>(result.max_backlog),
                    result.overloaded ? "yes" : "no");
      }
    }
  }

  bench::print_header("Extension: overload threshold (mean events/sec) by arrival process");
  std::printf("%15s %14s %14s\n", "protocol", "poisson", "bursty 20%");
  for (const Protocol protocol : {Protocol::kLinkMatching, Protocol::kFlooding}) {
    double thresholds[2] = {0, 0};
    for (const bool bursty : {false, true}) {
      Simulation sim = make_sim(protocol, bursty);
      SaturationConfig sat;
      sat.min_rate = 20.0;
      sat.max_rate = 2e6;
      sat.relative_tolerance = 0.08;
      sat.events = sim.events().size();
      const auto result = find_saturation_rate(sat, [&](double rate, std::uint64_t seed) {
        return sim.run_at_rate(rate, seed);
      });
      thresholds[bursty ? 1 : 0] = result.saturation_rate;
    }
    std::printf("%15s %14.0f %14.0f\n", to_string(protocol), thresholds[0], thresholds[1]);
  }
  std::printf(
      "\n(Bursts concentrate arrivals 5x above the mean during ON windows, so the\n"
      " sustainable mean rate drops for both protocols; link matching retains its\n"
      " headroom advantage.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
