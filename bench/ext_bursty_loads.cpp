// Extension (paper Section 6, future work): behaviour under bursty loads.
//
// "since many publish/subscribe applications exhibit peak activity periods,
// we are examining how our protocol performs with bursty message loads."
// Compare Poisson arrivals against an ON/OFF bursty process of equal mean
// rate: peak backlog and the mean rate at which the network first
// overloads, for link matching and flooding.
#include "bench_util.h"

#include "sim/saturation.h"
#include "workload/arrivals.h"

namespace gryphon {
namespace {

std::vector<PublishRecord> make_schedule(ArrivalProcess& arrivals,
                                         const std::vector<BrokerId>& publishers,
                                         std::size_t count, Rng& rng) {
  std::vector<PublishRecord> schedule;
  schedule.reserve(count);
  Ticks t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += arrivals.next_gap(rng);
    schedule.push_back(PublishRecord{t, publishers[i % publishers.size()], i});
  }
  return schedule;
}

void run() {
  bench::print_header("Extension: Poisson vs bursty (ON/OFF) arrivals, link matching");
  bench::PaperWorkload workload(10, 5, 0.85, 2000, 500, /*seed=*/11);
  PstMatcherOptions matcher_options;
  matcher_options.factoring_levels = 2;

  const auto run_at = [&](Protocol protocol, double mean_rate, bool bursty) {
    SimConfig config;
    config.protocol = protocol;
    config.verify_deliveries = false;
    config.drain_limit = ticks_from_seconds(10);
    BrokerSimulation sim(workload.topo.network, workload.schema,
                         workload.topo.publisher_brokers, workload.subscriptions,
                         matcher_options, config);
    Rng rng(5);
    std::vector<PublishRecord> schedule;
    if (bursty) {
      // 20% duty cycle: the ON rate is 5x the mean rate.
      BurstyArrivals arrivals(mean_rate * 5.0, 0.04, 0.16);
      schedule = make_schedule(arrivals, workload.topo.publisher_brokers,
                               workload.events.size(), rng);
    } else {
      PoissonArrivals arrivals(mean_rate);
      schedule = make_schedule(arrivals, workload.topo.publisher_brokers,
                               workload.events.size(), rng);
    }
    return sim.run(workload.events, schedule);
  };

  std::printf("%15s %12s %14s %14s %12s\n", "protocol", "mean rate", "arrivals",
              "max backlog", "overloaded");
  for (const Protocol protocol : {Protocol::kLinkMatching, Protocol::kFlooding}) {
    for (const double rate : {500.0, 2000.0, 8000.0}) {
      for (const bool bursty : {false, true}) {
        const auto result = run_at(protocol, rate, bursty);
        std::printf("%15s %12.0f %14s %14llu %12s\n", to_string(protocol), rate,
                    bursty ? "bursty 20%" : "poisson",
                    static_cast<unsigned long long>(result.max_backlog),
                    result.overloaded ? "yes" : "no");
      }
    }
  }

  bench::print_header("Extension: overload threshold (mean events/sec) by arrival process");
  std::printf("%15s %14s %14s\n", "protocol", "poisson", "bursty 20%");
  for (const Protocol protocol : {Protocol::kLinkMatching, Protocol::kFlooding}) {
    double thresholds[2] = {0, 0};
    for (const bool bursty : {false, true}) {
      SaturationConfig sat;
      sat.min_rate = 20.0;
      sat.max_rate = 2e6;
      sat.relative_tolerance = 0.08;
      const auto result = find_saturation_rate(sat, [&](double rate, std::uint64_t) {
        return run_at(protocol, rate, bursty);
      });
      thresholds[bursty ? 1 : 0] = result.saturation_rate;
    }
    std::printf("%15s %14.0f %14.0f\n", to_string(protocol), thresholds[0], thresholds[1]);
  }
  std::printf(
      "\n(Bursts concentrate arrivals 5x above the mean during ON windows, so the\n"
      " sustainable mean rate drops for both protocols; link matching retains its\n"
      " headroom advantage.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
