// Multithreaded matching throughput: N threads dispatching events against
// one BrokerCore snapshot concurrently, sweeping the thread count.
//
// The dispatch path shares no mutable state — readers pin an immutable
// snapshot (one pointer copy under a tiny lock) whose buckets hold the
// compiled flat kernel (matching/compiled_pst.h) and carry their own
// MatchScratch — so throughput should scale linearly until
// the machine runs out of cores. The sweep intentionally runs past the
// hardware concurrency (recorded in the JSON) so oversubscribed points are
// identifiable: on a 1-core container every multi-thread point is
// timeslicing, not parallelism, and speedups stay ~1.
//
// Writes BENCH_mt_throughput.json to the working directory.
//
// Usage: mt_throughput [subscriptions] [duration_ms_per_point]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "broker/broker_core.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

struct Point {
  std::size_t threads;
  std::uint64_t events;
  double seconds;
  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / seconds;
  }
};

Point run_point(const BrokerCore& core, const std::vector<Event>& pool,
                std::size_t n_threads, int duration_ms) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  bench::Stopwatch watch;
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      MatchScratch scratch;  // per-thread memoization arena
      std::uint64_t local = 0;
      std::size_t i = t * 7919;  // decorrelate the event streams
      while (!stop.load(std::memory_order_relaxed)) {
        for (int burst = 0; burst < 32; ++burst) {
          const Event& e = pool[i++ % pool.size()];
          const auto d = core.dispatch(SpaceId{0}, e, BrokerId{0}, scratch);
          if (d.steps == 0 && !d.forward.empty()) std::abort();  // keep `d` live
          ++local;
        }
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  return Point{n_threads, total.load(), watch.seconds()};
}

}  // namespace
}  // namespace gryphon

int main(int argc, char** argv) {
  using namespace gryphon;
  const std::size_t n_subs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10000;
  const int duration_ms = argc > 2 ? std::atoi(argv[2]) : 1000;

  const auto schema = make_synthetic_schema(8, 4);
  const BrokerNetwork topo = make_line(3, 10, 0, 1);
  BrokerCore core(BrokerId{1}, topo, {schema});

  Rng rng(4242);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.95, 0.85, 1.0});
  for (std::size_t i = 0; i < n_subs; ++i) {
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    core.add_subscription(SpaceId{0}, SubscriptionId{static_cast<std::int64_t>(i)},
                          gen.generate(rng), owner);
  }
  EventGenerator events(schema);
  std::vector<Event> pool;
  pool.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) pool.push_back(events.generate(rng));

  const unsigned hw = std::thread::hardware_concurrency();
  // With a single core (or when hardware_concurrency is unknown, reported as
  // 0) every multi-thread point is pure timeslicing: speedups are
  // meaningless, so the table column is suppressed and the JSON carries
  // "scaling_valid": false for downstream tooling.
  const bool scaling_valid = hw > 1;
  bench::print_header("Multithreaded dispatch throughput (snapshot pinning)");
  std::printf("subscriptions=%zu  hardware_concurrency=%u  per-point duration=%dms\n",
              n_subs, hw, duration_ms);
  if (!scaling_valid) {
    std::printf("single hardware thread: scaling numbers are not meaningful "
                "(scaling_valid=false)\n");
    std::printf("%8s %16s %14s\n", "threads", "events", "events/sec");
  } else {
    std::printf("%8s %16s %14s %10s\n", "threads", "events", "events/sec", "speedup");
  }

  std::vector<Point> points;
  double base = 0.0;
  for (const std::size_t t : {1u, 2u, 4u, 8u, 16u}) {
    const Point p = run_point(core, pool, t, duration_ms);
    if (t == 1) base = p.events_per_sec();
    points.push_back(p);
    if (!scaling_valid) {
      std::printf("%8zu %16llu %14.0f\n", p.threads,
                  static_cast<unsigned long long>(p.events), p.events_per_sec());
    } else {
      std::printf("%8zu %16llu %14.0f %9.2fx\n", p.threads,
                  static_cast<unsigned long long>(p.events), p.events_per_sec(),
                  p.events_per_sec() / base);
    }
  }

  std::FILE* out = std::fopen("BENCH_mt_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "mt_throughput: cannot write BENCH_mt_throughput.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"mt_throughput\",\n"
               "  \"kernel\": \"compiled\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"scaling_valid\": %s,\n"
               "  \"subscriptions\": %zu,\n"
               "  \"duration_ms_per_point\": %d,\n"
               "  \"results\": [\n",
               hw, scaling_valid ? "true" : "false", n_subs, duration_ms);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"events\": %llu, \"seconds\": %.4f, "
                 "\"events_per_sec\": %.1f",
                 p.threads, static_cast<unsigned long long>(p.events), p.seconds,
                 p.events_per_sec());
    if (scaling_valid) {
      std::fprintf(out, ", \"speedup_vs_1\": %.3f", p.events_per_sec() / base);
    }
    std::fprintf(out, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_mt_throughput.json\n");
  return 0;
}
