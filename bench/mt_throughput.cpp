// Multithreaded matching throughput: N threads dispatching event batches
// against one sharded BrokerCore snapshot concurrently, sweeping
// threads = shards.
//
// The dispatch path shares no mutable state — each batch pins an immutable
// snapshot (one pointer copy under a tiny lock) whose per-shard buckets
// hold the compiled flat kernel (matching/compiled_pst.h), and every
// DispatchBatch owns its MatchScratch — so throughput should scale
// linearly until the machine runs out of cores. The schema is factored
// (factoring_levels = 2) so the compiled state actually partitions into
// shards; each point rebuilds the core with shards = threads and reports
// how many events landed in each shard (Decision::shard).
//
// Honesty contract: scaling numbers are only claims about parallel
// hardware. When hardware_concurrency < threads the point is
// oversubscribed timeslicing, and on a 1-core (or unknown-concurrency)
// host no point is parallel at all, so the JSON carries
// "scaling_valid": false plus a human-readable "results_invalid_reason",
// speedup columns are suppressed, and downstream tooling (ci.sh perf leg)
// skips regression comparison entirely.
//
// Writes BENCH_mt_throughput.json to the working directory.
//
// Usage: mt_throughput [subscriptions] [duration_ms_per_point] [max_threads]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "broker/broker_core.h"
#include "topology/builders.h"

namespace gryphon {
namespace {

constexpr std::size_t kBatchSize = 32;

struct Point {
  std::size_t threads;
  std::size_t shards;
  std::uint64_t events;
  double seconds;
  std::vector<std::uint64_t> per_shard_events;
  [[nodiscard]] double events_per_sec() const {
    return static_cast<double>(events) / seconds;
  }
};

/// Builds a core whose factored space is partitioned into `shards`
/// data-plane shards, loaded with the same deterministic subscription set
/// at every point of the sweep.
std::unique_ptr<BrokerCore> make_core(const SchemaPtr& schema, const BrokerNetwork& topo,
                                      std::size_t n_subs, std::size_t shards) {
  PstMatcherOptions matcher;
  matcher.factoring_levels = 2;  // shard_of() partitions by factoring key
  auto core = std::make_unique<BrokerCore>(BrokerId{1}, topo,
                                           std::vector<SchemaPtr>{schema}, matcher, shards);
  Rng rng(4242);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.95, 0.85, 1.0});
  for (std::size_t i = 0; i < n_subs; ++i) {
    const BrokerId owner{static_cast<BrokerId::rep_type>(rng.below(3))};
    core->add_subscription(SpaceId{0}, SubscriptionId{static_cast<std::int64_t>(i)},
                           gen.generate(rng), owner);
  }
  return core;
}

Point run_point(const SchemaPtr& schema, const BrokerNetwork& topo,
                const std::vector<Event>& pool, std::size_t n_subs,
                std::size_t n_threads, int duration_ms) {
  const auto core = make_core(schema, topo, n_subs, n_threads);
  const std::size_t shard_count = core->shard_count(SpaceId{0});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::vector<std::uint64_t>> shard_counts(
      n_threads, std::vector<std::uint64_t>(shard_count, 0));
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  bench::Stopwatch watch;
  for (std::size_t t = 0; t < n_threads; ++t) {
    threads.emplace_back([&, t] {
      DispatchBatch batch;  // owns the per-thread memoization arena
      std::vector<std::uint64_t>& my_shards = shard_counts[t];
      std::uint64_t local = 0;
      std::size_t i = t * 7919;  // decorrelate the event streams
      while (!stop.load(std::memory_order_relaxed)) {
        batch.clear();
        for (std::size_t b = 0; b < kBatchSize; ++b) {
          batch.add(SpaceId{0}, pool[i++ % pool.size()], BrokerId{0});
        }
        const std::span<const Decision> decisions = core->dispatch(batch);
        for (const Decision& d : decisions) {
          if (d.steps == 0 && !d.forward.empty()) std::abort();  // keep `d` live
          ++my_shards[d.shard];
        }
        local += decisions.size();
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  Point p{n_threads, shard_count, total.load(), watch.seconds(), {}};
  p.per_shard_events.assign(shard_count, 0);
  for (const auto& counts : shard_counts) {
    for (std::size_t s = 0; s < shard_count; ++s) p.per_shard_events[s] += counts[s];
  }
  return p;
}

}  // namespace
}  // namespace gryphon

int main(int argc, char** argv) {
  using namespace gryphon;
  const std::size_t n_subs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10000;
  const int duration_ms = argc > 2 ? std::atoi(argv[2]) : 1000;
  const std::size_t max_threads =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 16;

  const auto schema = make_synthetic_schema(8, 4);
  const BrokerNetwork topo = make_line(3, 10, 0, 1);

  Rng rng(99);
  EventGenerator events(schema);
  std::vector<Event> pool;
  pool.reserve(4096);
  for (std::size_t i = 0; i < 4096; ++i) pool.push_back(events.generate(rng));

  const unsigned hw = std::thread::hardware_concurrency();
  // With a single core (or when hardware_concurrency is unknown, reported
  // as 0) every multi-thread point is pure timeslicing, so no scaling
  // claim is published at all; on real multi-core hosts, only points with
  // threads <= hardware_concurrency carry a speedup.
  const bool scaling_valid = hw > 1;
  const char* invalid_reason =
      hw == 0 ? "hardware_concurrency unknown (reported 0): parallelism unmeasurable"
              : "single hardware thread: multi-thread points are timeslicing, not scaling";
  bench::print_header("Multithreaded sharded batch dispatch throughput");
  std::printf(
      "subscriptions=%zu  hardware_concurrency=%u  per-point duration=%dms  "
      "batch=%zu  shards=threads\n",
      n_subs, hw, duration_ms, kBatchSize);
  if (!scaling_valid) {
    std::printf("%s (scaling_valid=false)\n", invalid_reason);
    std::printf("%8s %8s %16s %14s\n", "threads", "shards", "events", "events/sec");
  } else {
    std::printf("%8s %8s %16s %14s %10s\n", "threads", "shards", "events", "events/sec",
                "speedup");
  }

  std::vector<Point> points;
  double base = 0.0;
  for (const std::size_t t : {1u, 2u, 4u, 8u, 16u}) {
    if (t > max_threads) continue;
    const Point p = run_point(schema, topo, pool, n_subs, t, duration_ms);
    if (t == 1) base = p.events_per_sec();
    points.push_back(p);
    if (!scaling_valid) {
      std::printf("%8zu %8zu %16llu %14.0f\n", p.threads, p.shards,
                  static_cast<unsigned long long>(p.events), p.events_per_sec());
    } else if (p.threads <= hw) {
      std::printf("%8zu %8zu %16llu %14.0f %9.2fx\n", p.threads, p.shards,
                  static_cast<unsigned long long>(p.events), p.events_per_sec(),
                  p.events_per_sec() / base);
    } else {
      std::printf("%8zu %8zu %16llu %14.0f %10s\n", p.threads, p.shards,
                  static_cast<unsigned long long>(p.events), p.events_per_sec(),
                  "oversub");
    }
  }

  std::FILE* out = std::fopen("BENCH_mt_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "mt_throughput: cannot write BENCH_mt_throughput.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"mt_throughput\",\n"
               "  \"kernel\": \"compiled\",\n"
               "  \"dispatch\": \"sharded_batch\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"scaling_valid\": %s,\n",
               hw, scaling_valid ? "true" : "false");
  if (!scaling_valid) {
    std::fprintf(out, "  \"results_invalid_reason\": \"%s\",\n", invalid_reason);
  }
  std::fprintf(out,
               "  \"subscriptions\": %zu,\n"
               "  \"duration_ms_per_point\": %d,\n"
               "  \"batch_size\": %zu,\n"
               "  \"results\": [\n",
               n_subs, duration_ms, kBatchSize);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"shards\": %zu, \"events\": %llu, "
                 "\"seconds\": %.4f, \"events_per_sec\": %.1f",
                 p.threads, p.shards, static_cast<unsigned long long>(p.events), p.seconds,
                 p.events_per_sec());
    // A speedup is a parallel-hardware claim: emitted only when this host
    // can actually run the point's threads simultaneously.
    if (scaling_valid && p.threads <= hw) {
      std::fprintf(out, ", \"speedup_vs_1\": %.3f", p.events_per_sec() / base);
    }
    std::fprintf(out, ", \"per_shard_events\": [");
    for (std::size_t s = 0; s < p.per_shard_events.size(); ++s) {
      std::fprintf(out, "%s%llu", s == 0 ? "" : ", ",
                   static_cast<unsigned long long>(p.per_shard_events[s]));
    }
    std::fprintf(out, "]}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_mt_throughput.json\n");
  return 0;
}
