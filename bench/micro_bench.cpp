// Google-benchmark microbenchmarks for the hot paths: PST matching, link
// matching, subscription insertion, the trit algebra, and the wire codec.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.h"
#include "event/codec.h"
#include "matching/attribute_order.h"
#include "matching/naive_matcher.h"
#include "matching/pst_matcher.h"
#include "routing/annotated_pst.h"
#include "routing/link_matcher.h"
#include "workload/generators.h"

namespace gryphon {
namespace {

struct Fixture {
  SchemaPtr schema;
  std::vector<Subscription> subs;
  std::vector<Event> events;
  std::unordered_map<SubscriptionId, LinkIndex> links;

  explicit Fixture(std::size_t n_subs) : schema(make_synthetic_schema(10, 5)) {
    Rng rng(1);
    SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
    for (std::size_t i = 0; i < n_subs; ++i) {
      subs.push_back(gen.generate(rng));
      links[SubscriptionId{static_cast<std::int64_t>(i)}] =
          LinkIndex{static_cast<int>(rng.below(4))};
    }
    EventGenerator ev_gen(schema);
    for (int i = 0; i < 512; ++i) events.push_back(ev_gen.generate(rng));
  }
};

void BM_PstMatch(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  PstMatcherOptions options;
  options.factoring_levels = 2;
  PstMatcher matcher(fixture.schema, options);
  for (std::size_t i = 0; i < fixture.subs.size(); ++i) {
    matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, fixture.subs[i]);
  }
  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match_into(fixture.events[i++ % fixture.events.size()], out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PstMatch)->Arg(1000)->Arg(10000)->Arg(25000);

// The compiled-vs-mutable kernel pair: identical chart3-style workload and
// matcher configuration, differing only in PstMatcherOptions::compiled_kernel.
// The perf-smoke CI leg (tools/ci.sh perf) runs exactly these two.
void run_kernel_match(benchmark::State& state, bool compiled_kernel) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  PstMatcherOptions options;
  options.factoring_levels = 2;
  options.compiled_kernel = compiled_kernel;
  PstMatcher matcher(fixture.schema, options);
  for (std::size_t i = 0; i < fixture.subs.size(); ++i) {
    matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, fixture.subs[i]);
  }
  MatchScratch scratch;
  std::vector<SubscriptionId> out;
  // Warm-up past the compile hysteresis so every bucket the event pool
  // touches runs on its steady-state kernel before timing starts.
  for (unsigned pass = 0; pass <= PstMatcher::kCompileThreshold; ++pass) {
    for (const Event& e : fixture.events) {
      out.clear();
      matcher.match_into(e, out, scratch);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match_into(fixture.events[i++ % fixture.events.size()], out, scratch);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
void BM_PstMatchCompiled(benchmark::State& state) { run_kernel_match(state, true); }
BENCHMARK(BM_PstMatchCompiled)->Arg(1000)->Arg(10000)->Arg(25000);
void BM_PstMatchMutable(benchmark::State& state) { run_kernel_match(state, false); }
BENCHMARK(BM_PstMatchMutable)->Arg(1000)->Arg(10000)->Arg(25000);

void BM_NaiveMatch(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  NaiveMatcher matcher;
  for (std::size_t i = 0; i < fixture.subs.size(); ++i) {
    matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, fixture.subs[i]);
  }
  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match_into(fixture.events[i++ % fixture.events.size()], out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveMatch)->Arg(1000)->Arg(10000);

void BM_LinkMatch(benchmark::State& state) {
  Fixture fixture(static_cast<std::size_t>(state.range(0)));
  Pst tree(fixture.schema, identity_order(fixture.schema));
  for (std::size_t i = 0; i < fixture.subs.size(); ++i) {
    tree.add(SubscriptionId{static_cast<std::int64_t>(i)}, fixture.subs[i]);
  }
  AnnotatedPst annotated(tree, 4, [&](SubscriptionId id) { return fixture.links.at(id); });
  const TritVector init(4, Trit::Maybe);
  std::size_t i = 0;
  for (auto _ : state) {
    auto result = link_match(annotated, fixture.events[i++ % fixture.events.size()], init);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LinkMatch)->Arg(1000)->Arg(10000);

void BM_Subscribe(benchmark::State& state) {
  Fixture fixture(4096);
  PstMatcher matcher(fixture.schema);
  std::int64_t id = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    matcher.add(SubscriptionId{id++}, fixture.subs[i++ % fixture.subs.size()]);
    if (matcher.subscription_count() >= 4096) {
      state.PauseTiming();
      for (std::int64_t r = id - static_cast<std::int64_t>(matcher.subscription_count());
           r < id; ++r) {
        matcher.remove(SubscriptionId{r});
      }
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Subscribe);

void BM_IncrementalAnnotation(benchmark::State& state) {
  Fixture fixture(8192);
  Pst tree(fixture.schema, identity_order(fixture.schema));
  for (std::size_t i = 0; i < 4096; ++i) {
    tree.add(SubscriptionId{static_cast<std::int64_t>(i)}, fixture.subs[i]);
  }
  AnnotatedPst annotated(tree, 4, [&](SubscriptionId id) { return fixture.links.at(id); });
  const SubscriptionId id{4096};  // a slot with a known link assignment
  std::size_t next = 0;
  for (auto _ : state) {
    const Subscription& s = fixture.subs[next++ % fixture.subs.size()];
    annotated.apply(tree.add(id, s));
    annotated.apply(*tree.remove(id, s));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalAnnotation);

void BM_TritVectorRefine(benchmark::State& state) {
  TritVector mask(16, Trit::Maybe);
  TritVector annotation(16, Trit::No);
  for (std::size_t i = 0; i < 16; i += 3) annotation.set(i, Trit::Yes);
  for (auto _ : state) {
    TritVector m = mask;
    m.refine_with(annotation);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_TritVectorRefine);

void BM_EventCodecRoundTrip(benchmark::State& state) {
  Fixture fixture(16);
  const Event& event = fixture.events[0];
  for (auto _ : state) {
    const auto bytes = encode_event(event);
    const Event back = decode_event(fixture.schema, bytes);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventCodecRoundTrip);

}  // namespace
}  // namespace gryphon
