// Chart 2 — "Matching time": cumulative matching steps per delivery for the
// link matching algorithm at 1..6+ hops, versus centralized (non-trit)
// matching, as the number of subscriptions varies.
//
// Paper parameters (Section 4.1, Matching Time Results): event schema of 10
// attributes (3 used for factoring) with 3 values each, first-attribute
// non-* probability 0.98 decaying by 0.82 (~1.3% selectivity), 1000
// published events on the Figure 6 topology. A matching step is the
// visitation of a single node in the matching tree; for link matching the
// processing per delivery is the sum of the partial matches at every broker
// from publisher to subscriber.
//
// Expected shape: cumulative steps up to ~4 hops stay at or below the
// centralized cost; beyond that link matching takes more steps, while
// centralized matching grows faster with the number of subscriptions.
#include "bench_util.h"

namespace gryphon {
namespace {

void run() {
  bench::print_header(
      "Chart 2: mean cumulative matching steps per delivery, by hop count");
  std::printf("%14s", "subscriptions");
  for (int h = 1; h <= 6; ++h) std::printf("  LM %d hop%s", h, h == 1 ? " " : "s");
  std::printf("  %12s\n", "centralized");

  for (const std::size_t subs : {2000u, 4000u, 6000u, 8000u, 10000u}) {
    SimSpec spec = bench::paper_spec(10, 3, 0.82, subs, 1000, /*seed=*/77 + subs);
    spec.matcher.factoring_levels = 3;
    spec.protocol = Protocol::kLinkMatching;
    spec.workload.rate_eps = 200.0;
    // Keep the exact control plane even at 10k subscriptions: Chart 2 is
    // about measured per-hop step counts, which the aggregate plane models.
    spec.engine.control_plane = ControlPlaneMode::kExact;
    const SimResult result = simulate(spec);

    std::printf("%14zu", subs);
    for (int h = 1; h <= 6; ++h) {
      const auto it = result.per_hop.find(h);
      if (it == result.per_hop.end()) {
        std::printf("  %8s ", "-");
      } else {
        std::printf("  %8.1f ", it->second.mean_steps());
      }
    }
    std::printf("  %12.1f\n",
                result.oracle_events_verified == 0
                    ? 0.0
                    : static_cast<double>(result.centralized_steps) /
                          static_cast<double>(result.oracle_events_verified));
    if (result.missing_deliveries + result.spurious_deliveries > 0) {
      std::printf("  !! delivery mismatch: %llu missing, %llu spurious\n",
                  static_cast<unsigned long long>(result.missing_deliveries),
                  static_cast<unsigned long long>(result.spurious_deliveries));
    }
  }
  std::printf(
      "\n(LM k hops: events delivered k brokers away from the publisher; the paper's\n"
      " claim is LM <= centralized for <= 4 hops and centralized growing faster in\n"
      " the number of subscriptions.)\n");
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::run();
  return 0;
}
