// Compiled-vs-mutable kernel comparison on the chart3-style workload
// (synthetic 10x5 schema, paper subscription mix, factoring_levels=2): the
// same PstMatcher configuration matched through the mutable Pst walk and
// through the compiled flat kernel (CompiledPst), plus the one-time compile
// cost of freezing every bucket. The ISSUE acceptance bar is compiled >= 2x
// mutable at 10k subscriptions.
//
// Writes BENCH_compiled_pst.json to the working directory.
//
// Usage: compiled_pst_bench [subscriptions] [probe_events] [repeat_passes]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "matching/compiled_pst.h"
#include "matching/pst_matcher.h"

namespace gryphon {
namespace {

struct KernelResult {
  double ns_per_event;
  double steps_per_event;
  std::uint64_t checksum;  // total matches — must agree between kernels
};

KernelResult run_kernel(const SchemaPtr& schema, const std::vector<Subscription>& subs,
                        const std::vector<Event>& events, std::size_t passes,
                        bool compiled_kernel) {
  PstMatcherOptions options;
  options.factoring_levels = 2;
  options.compiled_kernel = compiled_kernel;
  PstMatcher matcher(schema, options);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    matcher.add(SubscriptionId{static_cast<std::int64_t>(i)}, subs[i]);
  }
  MatchScratch scratch;
  std::vector<SubscriptionId> out;
  // Warm-up: pulls every bucket past the compile hysteresis (and warms the
  // caches identically for the mutable run).
  for (unsigned pass = 0; pass <= PstMatcher::kCompileThreshold; ++pass) {
    for (const Event& e : events) {
      out.clear();
      matcher.match_into(e, out, scratch);
    }
  }
  MatchStats stats;
  std::uint64_t checksum = 0;
  bench::Stopwatch watch;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const Event& e : events) {
      out.clear();
      matcher.match_into(e, out, scratch, &stats);
      checksum += out.size();
    }
  }
  const double seconds = watch.seconds();
  const double n = static_cast<double>(events.size() * passes);
  return KernelResult{seconds * 1e9 / n,
                      static_cast<double>(stats.nodes_visited + stats.tests_evaluated) / n,
                      checksum};
}

}  // namespace
}  // namespace gryphon

int main(int argc, char** argv) {
  using namespace gryphon;
  const std::size_t n_subs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10000;
  const std::size_t n_events =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 2000;
  const std::size_t passes = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 20;

  const auto schema = make_synthetic_schema(10, 5);
  Rng rng(1);
  SubscriptionGenerator gen(schema, SubscriptionWorkloadConfig{0.98, 0.85, 1.0});
  std::vector<Subscription> subs;
  subs.reserve(n_subs);
  for (std::size_t i = 0; i < n_subs; ++i) subs.push_back(gen.generate(rng));
  EventGenerator ev_gen(schema);
  std::vector<Event> events;
  events.reserve(n_events);
  for (std::size_t i = 0; i < n_events; ++i) events.push_back(ev_gen.generate(rng));

  // One-time compile cost: freeze + flatten every bucket of a fresh matcher.
  PstMatcherOptions compile_options;
  compile_options.factoring_levels = 2;
  PstMatcher compile_probe(schema, compile_options);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    compile_probe.add(SubscriptionId{static_cast<std::int64_t>(i)}, subs[i]);
  }
  std::size_t compiled_bytes = 0;
  bench::Stopwatch compile_watch;
  std::size_t tree_count = 0;
  compile_probe.for_each_bucket([&](const FactoringIndex::Key*, const Pst& tree) {
    const CompiledPst kernel{FrozenPsg(tree)};
    compiled_bytes += kernel.memory_bytes();
    ++tree_count;
  });
  const double compile_ms = compile_watch.seconds() * 1e3;

  bench::print_header("Compiled vs mutable PST kernel (chart3-style workload)");
  std::printf("subscriptions=%zu  probe_events=%zu  passes=%zu  buckets=%zu\n", n_subs,
              n_events, passes, tree_count);
  const KernelResult mut = run_kernel(schema, subs, events, passes, false);
  const KernelResult comp = run_kernel(schema, subs, events, passes, true);
  if (mut.checksum != comp.checksum) {
    std::fprintf(stderr, "compiled_pst_bench: kernels disagree (%llu vs %llu matches)\n",
                 static_cast<unsigned long long>(mut.checksum),
                 static_cast<unsigned long long>(comp.checksum));
    return 1;
  }
  const double speedup = mut.ns_per_event / comp.ns_per_event;
  std::printf("%10s %14s %16s\n", "kernel", "ns/event", "steps/event");
  std::printf("%10s %14.1f %16.1f\n", "mutable", mut.ns_per_event, mut.steps_per_event);
  std::printf("%10s %14.1f %16.1f\n", "compiled", comp.ns_per_event, comp.steps_per_event);
  std::printf("speedup: %.2fx   compile cost: %.2f ms (%zu buckets, %.1f KiB flat)\n",
              speedup, compile_ms, tree_count, static_cast<double>(compiled_bytes) / 1024.0);

  std::FILE* out = std::fopen("BENCH_compiled_pst.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "compiled_pst_bench: cannot write BENCH_compiled_pst.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"compiled_pst\",\n"
               "  \"workload\": \"chart3-style (synthetic 10x5, 0.98/0.85 mix, "
               "factoring_levels 2)\",\n"
               "  \"subscriptions\": %zu,\n"
               "  \"probe_events\": %zu,\n"
               "  \"passes\": %zu,\n"
               "  \"buckets\": %zu,\n"
               "  \"compile_ms_all_buckets\": %.3f,\n"
               "  \"compiled_kernel_bytes\": %zu,\n"
               "  \"mutable_ns_per_event\": %.1f,\n"
               "  \"compiled_ns_per_event\": %.1f,\n"
               "  \"mutable_steps_per_event\": %.1f,\n"
               "  \"compiled_steps_per_event\": %.1f,\n"
               "  \"matches_checksum\": %llu,\n"
               "  \"speedup\": %.3f\n}\n",
               n_subs, n_events, passes, tree_count, compile_ms, compiled_bytes,
               mut.ns_per_event, comp.ns_per_event, mut.steps_per_event,
               comp.steps_per_event, static_cast<unsigned long long>(comp.checksum), speedup);
  std::fclose(out);
  std::printf("wrote BENCH_compiled_pst.json\n");
  return 0;
}
