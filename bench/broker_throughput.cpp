// Prototype broker throughput (Section 4.2): the paper's Java broker on a
// 200 MHz Pentium Pro delivered up to 14,000 events/sec over a token ring.
// This harness drives the C++ broker end-to-end — client publish frames
// through the wire codec, matching engine, event log, and delivery frames —
// over the in-process transport, and over real TCP on loopback.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "broker/broker.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "broker/tcp_transport.h"

namespace gryphon {
namespace {

SchemaPtr trade_schema() {
  return make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                                Attribute{"price", AttributeType::kDouble, {}},
                                Attribute{"volume", AttributeType::kInt, {}}});
}

void inproc_throughput(std::size_t n_subscriptions, std::size_t n_events) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);
  InProcNetwork net;
  auto* broker_ep = net.create_endpoint("broker");
  Broker broker(BrokerId{0}, topo, {schema}, *broker_ep);
  broker_ep->set_handler(&broker);

  auto* sub_ep = net.create_endpoint("sub");
  Client subscriber("sub", *sub_ep, std::vector<SchemaPtr>{schema});
  sub_ep->set_handler(&subscriber);
  subscriber.bind(net.connect("sub", "broker"));
  net.pump();
  // Selective subscriptions: a few match, most do not.
  Rng rng(7);
  for (std::size_t i = 0; i < n_subscriptions; ++i) {
    const auto issue = "S" + std::to_string(rng.below(1000));
    subscriber.subscribe(0, "issue = '" + issue + "' & volume > " +
                                std::to_string(rng.below(5000)));
  }
  net.pump();

  auto* pub_ep = net.create_endpoint("pub");
  Client publisher("pub", *pub_ep, std::vector<SchemaPtr>{schema});
  pub_ep->set_handler(&publisher);
  publisher.bind(net.connect("pub", "broker"));
  net.pump();

  bench::Stopwatch watch;
  for (std::size_t i = 0; i < n_events; ++i) {
    publisher.publish(0, Event(schema, {Value("S" + std::to_string(i % 1000)),
                                        Value(100.0), Value(static_cast<int>(i % 10000))}));
    if (i % 256 == 0) net.pump();
  }
  net.pump();
  const double seconds = watch.seconds();
  const auto stats = broker.stats();
  std::printf("%10s %8zu subs %8zu events: %9.0f events/sec (%llu delivered)\n",
              "in-proc", n_subscriptions, n_events,
              static_cast<double>(n_events) / seconds,
              static_cast<unsigned long long>(stats.events_delivered));
  (void)subscriber.take_deliveries();
}

void tcp_throughput(std::size_t n_subscriptions, std::size_t n_events) {
  const auto schema = trade_schema();
  const BrokerNetwork topo = make_line(1, 10, 0, 1);

  struct Relay : TransportHandler {
    TransportHandler* target{nullptr};
    void on_connect(ConnId c) override { target->on_connect(c); }
    void on_frame(ConnId c, std::span<const std::uint8_t> f) override { target->on_frame(c, f); }
    void on_disconnect(ConnId c) override { target->on_disconnect(c); }
  };

  Relay broker_relay;
  TcpTransport broker_transport(broker_relay);
  Broker broker(BrokerId{0}, topo, {schema}, broker_transport);
  broker_relay.target = &broker;
  const std::uint16_t port = broker_transport.listen(0);

  Relay sub_relay;
  TcpTransport sub_transport(sub_relay);
  Client subscriber("sub", sub_transport, std::vector<SchemaPtr>{schema});
  sub_relay.target = &subscriber;
  subscriber.bind(sub_transport.connect("127.0.0.1", port));

  Rng rng(7);
  std::uint64_t matching_token = 0;
  for (std::size_t i = 0; i < n_subscriptions; ++i) {
    const auto issue = "S" + std::to_string(rng.below(1000));
    matching_token = subscriber.subscribe(0, "issue = '" + issue + "'");
  }
  // Plus one guaranteed-match subscription so deliveries flow.
  matching_token = subscriber.subscribe(0, "volume >= 0");
  for (int i = 0; i < 500 && !subscriber.subscription_id(matching_token); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Relay pub_relay;
  TcpTransport pub_transport(pub_relay);
  Client publisher("pub", pub_transport, std::vector<SchemaPtr>{schema});
  pub_relay.target = &publisher;
  publisher.bind(pub_transport.connect("127.0.0.1", port));

  bench::Stopwatch watch;
  for (std::size_t i = 0; i < n_events; ++i) {
    publisher.publish(0, Event(schema, {Value("S" + std::to_string(i % 1000)),
                                        Value(100.0), Value(static_cast<int>(i))}));
  }
  // Every event matches the catch-all subscription: wait for all deliveries.
  const bool ok = subscriber.wait_for_deliveries(n_events, 60000);
  const double seconds = watch.seconds();
  std::printf("%10s %8zu subs %8zu events: %9.0f events/sec (%s)\n", "tcp", n_subscriptions,
              n_events, static_cast<double>(n_events) / seconds,
              ok ? "all delivered" : "TIMEOUT");
  sub_transport.shutdown();
  pub_transport.shutdown();
  broker_transport.shutdown();
}

}  // namespace
}  // namespace gryphon

int main() {
  gryphon::bench::print_header(
      "Broker prototype throughput (paper: 14,000 events/sec on 200 MHz P6)");
  gryphon::inproc_throughput(100, 50000);
  gryphon::inproc_throughput(1000, 50000);
  gryphon::inproc_throughput(10000, 20000);
  gryphon::tcp_throughput(100, 20000);
  gryphon::tcp_throughput(1000, 20000);
  return 0;
}
