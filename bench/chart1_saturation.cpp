// Chart 1 — "Saturation points": the event publish rate at which the broker
// network becomes overloaded, for flooding vs link matching, as the number
// of subscriptions varies.
//
// Paper parameters (Section 4.1, Network Loading Results): Figure 6
// topology (39 brokers, 10 subscribing clients per broker), event schema of
// 10 attributes (2 used for factoring) with 5 values each, subscriptions
// with first-attribute non-* probability 0.98 decaying by 0.85 per
// attribute (~0.1% selectivity), zipf values with per-region locality, 500
// published events, Poisson arrivals.
//
// Expected shape: flooding saturates at a much lower publish rate than link
// matching for every subscription count, with the largest gap at high
// selectivity. A second sweep with low-selectivity ("broad") subscriptions
// shows the gap narrowing, as the paper notes.
#include "bench_util.h"

#include "sim/saturation.h"

namespace gryphon {
namespace {

double saturation_rate(SimSpec spec, Protocol protocol) {
  spec.protocol = protocol;
  spec.matcher.factoring_levels = 2;
  spec.verify.verify_deliveries = false;
  spec.limits.drain_limit = ticks_from_seconds(5);
  Simulation sim(std::move(spec));

  SaturationConfig sat;
  sat.min_rate = 20.0;
  sat.max_rate = 4e6;
  sat.relative_tolerance = 0.06;
  sat.events = sim.events().size();
  const auto result = find_saturation_rate(sat, [&](double rate, std::uint64_t seed) {
    return sim.run_at_rate(rate, seed);
  });
  return result.saturation_rate;
}

void sweep(const char* label, double decay) {
  bench::print_header(std::string("Chart 1: saturation publish rate (events/sec) — ") + label);
  std::printf("%14s %16s %16s %8s\n", "subscriptions", "flooding", "link-matching", "ratio");
  for (const std::size_t subs : {250u, 500u, 1000u, 2000u, 4000u, 8000u}) {
    const SimSpec spec = bench::paper_spec(10, 5, decay, subs, 500, /*seed=*/1000 + subs);
    const double flooding = saturation_rate(spec, Protocol::kFlooding);
    const double link_matching = saturation_rate(spec, Protocol::kLinkMatching);
    std::printf("%14zu %16.0f %16.0f %7.1fx\n", subs, flooding, link_matching,
                flooding > 0 ? link_matching / flooding : 0.0);
  }
}

}  // namespace
}  // namespace gryphon

int main() {
  // Paper setting: very selective subscriptions (decay 0.85, ~0.1% match).
  gryphon::sweep("selective subscriptions (paper setting, ~0.1% selectivity)", 0.85);
  // Broad subscriptions: events are distributed widely, most links carry
  // most events, and the two protocols converge ("the difference is not as
  // great", Section 4.1).
  gryphon::sweep("broad subscriptions (low selectivity)", 0.35);
  return 0;
}
