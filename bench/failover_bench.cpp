// Failover benchmark: what the replication layer costs on the publish hot
// path, and what a failover costs end to end.
//
// Two measurements:
//
//   * publish hot-path delta — per-publish latency (client publish -> every
//     in-proc frame drained, delivery included) with replication OFF vs ON
//     (update log armed + hot standby attached and streaming), p50/p99 over
//     the same publish count. The delta is the price of mirroring the
//     delivery and link logs through the update stream.
//   * failover — seed a primary with dormant subscriptions and unacked
//     in-flight deliveries, sever the replication link (the kill), then
//     time promote() (identity takeover: epoch adoption + log rebasing)
//     and the gap from kill to the first redelivered event after the
//     subscriber redials the promoted standby. Percentiles over T trials.
//
// Everything is in-proc: the numbers are the CPU cost of the mechanisms
// (codec, log mirroring, rebase, replay), not network latency. The honesty
// contract from the other harnesses applies: the failover section carries
// valid / invalid_reason, and a trial whose redelivered multiset diverges
// from the retained-delivery oracle invalidates the whole run.
//
//   failover_bench [publishes] [trials]
//
// Defaults: 2000 25. CI runs a trimmed point (see tools/ci.sh). Writes
// BENCH_failover.json into the current directory.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "broker/broker.h"
#include "broker/client.h"
#include "broker/inproc_transport.h"
#include "topology/builders.h"

namespace gryphon::bench {
namespace {

constexpr std::uint64_t kPrimaryEpoch = 777;
constexpr std::size_t kDormantSubs = 64;       // pads the registry for rebase cost
constexpr std::size_t kRetainedDeliveries = 32;  // unacked at kill time

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double percentile_us(std::vector<std::uint64_t> ns, double p) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[std::min(idx, ns.size() - 1)]) / 1000.0;
}

/// One primary (BrokerId{0}) and, when replication is on, a hot standby
/// constructed with the primary's id — the same harness shape as the
/// replication unit tests, rebuilt fresh per trial.
struct FailoverBed {
  SchemaPtr schema =
      make_schema("trades", {Attribute{"issue", AttributeType::kString, {}},
                             Attribute{"price", AttributeType::kDouble, {}},
                             Attribute{"volume", AttributeType::kInt, {}}});
  BrokerNetwork topo = make_line(2, 10, 0, 1);
  InProcNetwork net;
  std::atomic<Ticks> clock{0};
  std::unique_ptr<Broker> primary;
  std::unique_ptr<Broker> standby;
  std::vector<std::unique_ptr<Client>> clients;
  ConnId repl_conn{kInvalidConn};

  explicit FailoverBed(bool replicate) {
    Broker::Options popts = base_options();
    popts.session_epoch = kPrimaryEpoch;
    popts.replicate = replicate;
    primary = make_broker("primary0", BrokerId{0}, popts);
    if (replicate) {
      Broker::Options sopts = base_options();
      sopts.session_epoch = 5555;  // replaced by the snapshot's epoch
      sopts.standby = true;
      sopts.failover_seq_gap = 1000;
      standby = make_broker("standby0", BrokerId{0}, sopts);
      repl_conn = net.connect("standby0", "primary0");
      standby->attach_replication_link(repl_conn);
      net.pump();
    }
  }

  Broker::Options base_options() {
    Broker::Options opts;
    opts.link_retransmit_timeout = 50;
    opts.link_heartbeat_interval = 200;
    opts.repl_retransmit_timeout = 50;
    opts.clock = [this] { return clock.load(std::memory_order_relaxed); };
    return opts;
  }

  std::unique_ptr<Broker> make_broker(const std::string& name, BrokerId id,
                                      const Broker::Options& opts) {
    auto* endpoint = net.create_endpoint(name);
    auto broker = std::make_unique<Broker>(
        id, topo, std::vector<SchemaPtr>{schema}, *endpoint, opts);
    endpoint->set_handler(broker.get());
    return broker;
  }

  Client& add_client(const std::string& name, const std::string& broker_endpoint,
                     const Client::Options& copts = {}) {
    auto* endpoint = net.create_endpoint(name);
    clients.push_back(std::make_unique<Client>(
        name, *endpoint, std::vector<SchemaPtr>{schema}, copts));
    endpoint->set_handler(clients.back().get());
    clients.back()->bind(net.connect(name, broker_endpoint));
    net.pump();
    return *clients.back();
  }

  Event make_event(int tag) {
    return Event(schema, {Value("IBM"), Value(100.0 + tag), Value(tag)});
  }
};

struct PublishResult {
  std::vector<std::uint64_t> op_ns;
  double seconds{0};
  std::uint64_t updates_streamed{0};
};

/// Times `publishes` single-event publish -> full in-proc drain cycles
/// (subscriber delivery and, when on, the replication frames are inside
/// the timed window — that is the hot path the standby rides).
PublishResult run_publish_path(bool replicate, std::size_t publishes) {
  FailoverBed bed(replicate);
  Client& sub = bed.add_client("sub", "primary0");
  sub.subscribe(0, "volume > 0");
  Client& pub = bed.add_client("pub", "primary0");
  bed.net.pump();

  PublishResult r;
  r.op_ns.reserve(publishes);
  Stopwatch total;
  for (std::size_t i = 0; i < publishes; ++i) {
    const std::uint64_t t0 = now_ns();
    pub.publish(0, bed.make_event(static_cast<int>(i % 1000) + 1));
    bed.net.pump();
    r.op_ns.push_back(now_ns() - t0);
    (void)sub.take_deliveries();
  }
  r.seconds = total.seconds();
  r.updates_streamed = bed.primary->stats().repl_updates_sent;
  return r;
}

struct FailoverResult {
  bool valid{true};
  std::string invalid_reason;
  std::vector<std::uint64_t> promote_ns;
  std::vector<std::uint64_t> redeliver_ns;
};

/// One kill -> promote -> redial -> first-redelivery cycle. The subscriber
/// holds `kRetainedDeliveries` unacked deliveries at kill time; the
/// redelivered multiset must equal that oracle or the run is invalid.
void run_failover_trial(FailoverResult& out) {
  FailoverBed bed(/*replicate=*/true);
  Client::Options no_ack;
  no_ack.auto_ack = false;
  Client& sub = bed.add_client("sub", "primary0", no_ack);
  sub.subscribe(0, "volume > 0 and volume < 1000000");
  // Dormant subscriptions pad the registry: promotion rebases every log and
  // the snapshot carries the whole table, so this is part of the cost.
  for (std::size_t s = 0; s < kDormantSubs; ++s) {
    sub.subscribe(0, "volume > " + std::to_string(1000000 + s));
  }
  Client& pub = bed.add_client("pub", "primary0");
  bed.net.pump();

  std::vector<int> oracle;
  for (std::size_t i = 0; i < kRetainedDeliveries; ++i) {
    const int tag = static_cast<int>(i) + 1;
    oracle.push_back(tag);
    pub.publish(0, bed.make_event(tag));
  }
  bed.net.pump();
  if (sub.take_deliveries().size() != kRetainedDeliveries) {
    out.valid = false;
    out.invalid_reason = "seed deliveries did not all arrive before the kill";
    return;
  }

  // The kill: the replication stream goes silent. Everything from here to
  // the first replayed delivery is the failover cost.
  bed.net.drop("standby0", bed.repl_conn);
  bed.net.pump();
  const std::uint64_t t_kill = now_ns();
  bed.standby->promote();
  out.promote_ns.push_back(now_ns() - t_kill);

  // The consumer restarts (cursor lost) and redials the promoted standby
  // under the same hello name: the retained deliveries replay.
  auto* endpoint = bed.net.create_endpoint("sub_redial");
  Client resumed("sub", *endpoint, std::vector<SchemaPtr>{bed.schema});
  endpoint->set_handler(&resumed);
  resumed.bind(bed.net.connect("sub_redial", "standby0"));
  bed.net.pump();
  const auto replayed = resumed.take_deliveries();
  out.redeliver_ns.push_back(now_ns() - t_kill);

  std::vector<int> got;
  got.reserve(replayed.size());
  for (const auto& d : replayed) {
    got.push_back(static_cast<int>(d.event.value(2).as_int()));
  }
  std::sort(got.begin(), got.end());
  if (got != oracle) {
    out.valid = false;
    out.invalid_reason = "redelivered multiset diverged from the retained-delivery "
                         "oracle (got " +
                         std::to_string(got.size()) + " of " +
                         std::to_string(oracle.size()) + ")";
  }
}

int run(int argc, char** argv) {
  const std::size_t publishes =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10)) : 2000;
  const std::size_t trials =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10)) : 25;
  if (publishes == 0 || trials == 0) {
    std::fprintf(stderr, "usage: failover_bench [publishes] [trials]\n");
    return 2;
  }

  print_header("publish hot path: replication off vs on");
  const PublishResult off = run_publish_path(false, publishes);
  const PublishResult on = run_publish_path(true, publishes);
  const double off_p50 = percentile_us(off.op_ns, 0.50);
  const double on_p50 = percentile_us(on.op_ns, 0.50);
  std::printf("  off: p50/p99=%.1f/%.1f us  %.0f publishes/s\n", off_p50,
              percentile_us(off.op_ns, 0.99),
              static_cast<double>(publishes) / off.seconds);
  std::printf("  on:  p50/p99=%.1f/%.1f us  %.0f publishes/s  "
              "(%llu updates streamed)\n",
              on_p50, percentile_us(on.op_ns, 0.99),
              static_cast<double>(publishes) / on.seconds,
              static_cast<unsigned long long>(on.updates_streamed));
  if (off_p50 > 0) {
    std::printf("  p50 overhead: %.2fx\n", on_p50 / off_p50);
  }

  print_header("failover: kill -> promote -> first redelivery");
  FailoverResult fo;
  for (std::size_t t = 0; t < trials && fo.valid; ++t) {
    run_failover_trial(fo);
  }
  std::printf("  trials=%zu retained=%zu dormant_subs=%zu\n", fo.promote_ns.size(),
              kRetainedDeliveries, kDormantSubs);
  std::printf("  promote p50/p99=%.1f/%.1f us  first redelivery p50/p99=%.1f/%.1f us%s\n",
              percentile_us(fo.promote_ns, 0.50), percentile_us(fo.promote_ns, 0.99),
              percentile_us(fo.redeliver_ns, 0.50),
              percentile_us(fo.redeliver_ns, 0.99),
              fo.valid ? "" : "  [INVALID]");
  if (!fo.valid) {
    std::printf("  invalid: %s\n", fo.invalid_reason.c_str());
  }

  std::FILE* out = std::fopen("BENCH_failover.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failover_bench: cannot write BENCH_failover.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"failover\",\n"
               "  \"description\": \"in-proc CPU cost of the replication layer: "
               "publish hot-path delta with the update stream off vs on, and "
               "kill->promote->first-redelivery latency with unacked deliveries "
               "retained across the failover\",\n"
               "  \"publishes\": %zu,\n"
               "  \"publish_path\": {\n"
               "    \"off\": { \"p50_us\": %.2f, \"p99_us\": %.2f, "
               "\"publishes_per_sec\": %.1f },\n"
               "    \"on\": { \"p50_us\": %.2f, \"p99_us\": %.2f, "
               "\"publishes_per_sec\": %.1f, \"updates_streamed\": %llu },\n"
               "    \"p50_overhead_ratio\": %.3f\n"
               "  },\n"
               "  \"failover\": {\n"
               "    \"valid\": %s,\n"
               "    \"invalid_reason\": \"%s\",\n"
               "    \"trials\": %zu,\n"
               "    \"retained_deliveries\": %zu,\n"
               "    \"dormant_subscriptions\": %zu,\n"
               "    \"promote_p50_us\": %.2f,\n"
               "    \"promote_p99_us\": %.2f,\n"
               "    \"first_redelivery_p50_us\": %.2f,\n"
               "    \"first_redelivery_p99_us\": %.2f\n"
               "  }\n"
               "}\n",
               publishes, off_p50, percentile_us(off.op_ns, 0.99),
               static_cast<double>(publishes) / off.seconds, on_p50,
               percentile_us(on.op_ns, 0.99),
               static_cast<double>(publishes) / on.seconds,
               static_cast<unsigned long long>(on.updates_streamed),
               off_p50 > 0 ? on_p50 / off_p50 : 0.0, fo.valid ? "true" : "false",
               fo.invalid_reason.c_str(), fo.promote_ns.size(), kRetainedDeliveries,
               kDormantSubs, percentile_us(fo.promote_ns, 0.50),
               percentile_us(fo.promote_ns, 0.99), percentile_us(fo.redeliver_ns, 0.50),
               percentile_us(fo.redeliver_ns, 0.99));
  std::fclose(out);
  std::printf("\nwrote BENCH_failover.json\n");
  return fo.valid ? 0 : 1;
}

}  // namespace
}  // namespace gryphon::bench

int main(int argc, char** argv) { return gryphon::bench::run(argc, argv); }
