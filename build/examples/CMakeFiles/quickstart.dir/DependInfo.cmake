
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/gryphon_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gryphon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gryphon_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gryphon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gryphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/gryphon_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/gryphon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
