file(REMOVE_RECURSE
  "CMakeFiles/wan_multicast.dir/wan_multicast.cpp.o"
  "CMakeFiles/wan_multicast.dir/wan_multicast.cpp.o.d"
  "wan_multicast"
  "wan_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
