# Empty dependencies file for wan_multicast.
# This may be replaced when dependencies are built.
