# Empty dependencies file for chart3_matching_latency.
# This may be replaced when dependencies are built.
