file(REMOVE_RECURSE
  "CMakeFiles/chart3_matching_latency.dir/chart3_matching_latency.cpp.o"
  "CMakeFiles/chart3_matching_latency.dir/chart3_matching_latency.cpp.o.d"
  "chart3_matching_latency"
  "chart3_matching_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chart3_matching_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
