# Empty compiler generated dependencies file for ablation_attribute_order.
# This may be replaced when dependencies are built.
