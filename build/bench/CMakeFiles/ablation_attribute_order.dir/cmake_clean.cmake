file(REMOVE_RECURSE
  "CMakeFiles/ablation_attribute_order.dir/ablation_attribute_order.cpp.o"
  "CMakeFiles/ablation_attribute_order.dir/ablation_attribute_order.cpp.o.d"
  "ablation_attribute_order"
  "ablation_attribute_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attribute_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
