# Empty compiler generated dependencies file for broker_throughput.
# This may be replaced when dependencies are built.
