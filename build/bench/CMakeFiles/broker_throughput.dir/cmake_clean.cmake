file(REMOVE_RECURSE
  "CMakeFiles/broker_throughput.dir/broker_throughput.cpp.o"
  "CMakeFiles/broker_throughput.dir/broker_throughput.cpp.o.d"
  "broker_throughput"
  "broker_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
