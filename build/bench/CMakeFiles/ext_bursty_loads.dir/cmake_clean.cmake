file(REMOVE_RECURSE
  "CMakeFiles/ext_bursty_loads.dir/ext_bursty_loads.cpp.o"
  "CMakeFiles/ext_bursty_loads.dir/ext_bursty_loads.cpp.o.d"
  "ext_bursty_loads"
  "ext_bursty_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bursty_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
