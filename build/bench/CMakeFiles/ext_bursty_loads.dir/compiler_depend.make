# Empty compiler generated dependencies file for ext_bursty_loads.
# This may be replaced when dependencies are built.
