# Empty dependencies file for chart1_saturation.
# This may be replaced when dependencies are built.
