file(REMOVE_RECURSE
  "CMakeFiles/chart1_saturation.dir/chart1_saturation.cpp.o"
  "CMakeFiles/chart1_saturation.dir/chart1_saturation.cpp.o.d"
  "chart1_saturation"
  "chart1_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chart1_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
