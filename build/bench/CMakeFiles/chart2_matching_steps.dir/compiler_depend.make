# Empty compiler generated dependencies file for chart2_matching_steps.
# This may be replaced when dependencies are built.
