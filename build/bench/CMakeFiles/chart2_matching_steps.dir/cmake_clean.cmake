file(REMOVE_RECURSE
  "CMakeFiles/chart2_matching_steps.dir/chart2_matching_steps.cpp.o"
  "CMakeFiles/chart2_matching_steps.dir/chart2_matching_steps.cpp.o.d"
  "chart2_matching_steps"
  "chart2_matching_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chart2_matching_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
