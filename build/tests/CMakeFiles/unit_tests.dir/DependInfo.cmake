
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_annotated_pst.cpp" "tests/CMakeFiles/unit_tests.dir/test_annotated_pst.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_annotated_pst.cpp.o.d"
  "/root/repo/tests/test_arrivals.cpp" "tests/CMakeFiles/unit_tests.dir/test_arrivals.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_arrivals.cpp.o.d"
  "/root/repo/tests/test_attribute_order.cpp" "tests/CMakeFiles/unit_tests.dir/test_attribute_order.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_attribute_order.cpp.o.d"
  "/root/repo/tests/test_broker_core.cpp" "tests/CMakeFiles/unit_tests.dir/test_broker_core.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_broker_core.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/unit_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/unit_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_content_router.cpp" "tests/CMakeFiles/unit_tests.dir/test_content_router.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_content_router.cpp.o.d"
  "/root/repo/tests/test_event_log.cpp" "tests/CMakeFiles/unit_tests.dir/test_event_log.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_event_log.cpp.o.d"
  "/root/repo/tests/test_factoring.cpp" "tests/CMakeFiles/unit_tests.dir/test_factoring.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_factoring.cpp.o.d"
  "/root/repo/tests/test_inproc_transport.cpp" "tests/CMakeFiles/unit_tests.dir/test_inproc_transport.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_inproc_transport.cpp.o.d"
  "/root/repo/tests/test_link_matcher.cpp" "tests/CMakeFiles/unit_tests.dir/test_link_matcher.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_link_matcher.cpp.o.d"
  "/root/repo/tests/test_matchers.cpp" "tests/CMakeFiles/unit_tests.dir/test_matchers.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_matchers.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/unit_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_psg.cpp" "tests/CMakeFiles/unit_tests.dir/test_psg.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_psg.cpp.o.d"
  "/root/repo/tests/test_pst.cpp" "tests/CMakeFiles/unit_tests.dir/test_pst.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_pst.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/unit_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_schema_event.cpp" "tests/CMakeFiles/unit_tests.dir/test_schema_event.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_schema_event.cpp.o.d"
  "/root/repo/tests/test_spanning_tree.cpp" "tests/CMakeFiles/unit_tests.dir/test_spanning_tree.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_spanning_tree.cpp.o.d"
  "/root/repo/tests/test_subscription.cpp" "tests/CMakeFiles/unit_tests.dir/test_subscription.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_subscription.cpp.o.d"
  "/root/repo/tests/test_tool_config.cpp" "tests/CMakeFiles/unit_tests.dir/test_tool_config.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_tool_config.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/unit_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trit.cpp" "tests/CMakeFiles/unit_tests.dir/test_trit.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_trit.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/unit_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_value.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/unit_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/unit_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_zipf.cpp" "tests/CMakeFiles/unit_tests.dir/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/unit_tests.dir/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/gryphon_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gryphon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gryphon_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gryphon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gryphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/gryphon_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/gryphon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/gryphon_tools_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
