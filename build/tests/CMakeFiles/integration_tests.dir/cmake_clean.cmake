file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/test_broker_network.cpp.o"
  "CMakeFiles/integration_tests.dir/test_broker_network.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_property_routing.cpp.o"
  "CMakeFiles/integration_tests.dir/test_property_routing.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_sim_protocols.cpp.o"
  "CMakeFiles/integration_tests.dir/test_sim_protocols.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_sim_saturation.cpp.o"
  "CMakeFiles/integration_tests.dir/test_sim_saturation.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_simulation_details.cpp.o"
  "CMakeFiles/integration_tests.dir/test_simulation_details.cpp.o.d"
  "CMakeFiles/integration_tests.dir/test_tcp_broker.cpp.o"
  "CMakeFiles/integration_tests.dir/test_tcp_broker.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
