
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_broker_network.cpp" "tests/CMakeFiles/integration_tests.dir/test_broker_network.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_broker_network.cpp.o.d"
  "/root/repo/tests/test_property_routing.cpp" "tests/CMakeFiles/integration_tests.dir/test_property_routing.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_property_routing.cpp.o.d"
  "/root/repo/tests/test_sim_protocols.cpp" "tests/CMakeFiles/integration_tests.dir/test_sim_protocols.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_sim_protocols.cpp.o.d"
  "/root/repo/tests/test_sim_saturation.cpp" "tests/CMakeFiles/integration_tests.dir/test_sim_saturation.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_sim_saturation.cpp.o.d"
  "/root/repo/tests/test_simulation_details.cpp" "tests/CMakeFiles/integration_tests.dir/test_simulation_details.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_simulation_details.cpp.o.d"
  "/root/repo/tests/test_tcp_broker.cpp" "tests/CMakeFiles/integration_tests.dir/test_tcp_broker.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/test_tcp_broker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/gryphon_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gryphon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gryphon_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gryphon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gryphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/gryphon_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/gryphon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
