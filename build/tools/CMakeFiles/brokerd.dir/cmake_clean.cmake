file(REMOVE_RECURSE
  "CMakeFiles/brokerd.dir/brokerd.cpp.o"
  "CMakeFiles/brokerd.dir/brokerd.cpp.o.d"
  "brokerd"
  "brokerd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brokerd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
