# Empty dependencies file for brokerd.
# This may be replaced when dependencies are built.
