file(REMOVE_RECURSE
  "CMakeFiles/gryphon_tools_common.dir/tool_config.cpp.o"
  "CMakeFiles/gryphon_tools_common.dir/tool_config.cpp.o.d"
  "libgryphon_tools_common.a"
  "libgryphon_tools_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_tools_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
