file(REMOVE_RECURSE
  "libgryphon_tools_common.a"
)
