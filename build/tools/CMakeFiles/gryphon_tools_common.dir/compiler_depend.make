# Empty compiler generated dependencies file for gryphon_tools_common.
# This may be replaced when dependencies are built.
