file(REMOVE_RECURSE
  "libgryphon_workload.a"
)
