# Empty compiler generated dependencies file for gryphon_workload.
# This may be replaced when dependencies are built.
