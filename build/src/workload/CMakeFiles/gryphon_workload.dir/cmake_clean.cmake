file(REMOVE_RECURSE
  "CMakeFiles/gryphon_workload.dir/arrivals.cpp.o"
  "CMakeFiles/gryphon_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/gryphon_workload.dir/generators.cpp.o"
  "CMakeFiles/gryphon_workload.dir/generators.cpp.o.d"
  "libgryphon_workload.a"
  "libgryphon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
