
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/broker.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/broker.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/broker.cpp.o.d"
  "/root/repo/src/broker/broker_core.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/broker_core.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/broker_core.cpp.o.d"
  "/root/repo/src/broker/client.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/client.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/client.cpp.o.d"
  "/root/repo/src/broker/event_log.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/event_log.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/event_log.cpp.o.d"
  "/root/repo/src/broker/inproc_transport.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/inproc_transport.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/inproc_transport.cpp.o.d"
  "/root/repo/src/broker/tcp_transport.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/tcp_transport.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/tcp_transport.cpp.o.d"
  "/root/repo/src/broker/wire.cpp" "src/broker/CMakeFiles/gryphon_broker.dir/wire.cpp.o" "gcc" "src/broker/CMakeFiles/gryphon_broker.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/gryphon_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/gryphon_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/gryphon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gryphon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
