file(REMOVE_RECURSE
  "libgryphon_broker.a"
)
