file(REMOVE_RECURSE
  "CMakeFiles/gryphon_broker.dir/broker.cpp.o"
  "CMakeFiles/gryphon_broker.dir/broker.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/broker_core.cpp.o"
  "CMakeFiles/gryphon_broker.dir/broker_core.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/client.cpp.o"
  "CMakeFiles/gryphon_broker.dir/client.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/event_log.cpp.o"
  "CMakeFiles/gryphon_broker.dir/event_log.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/inproc_transport.cpp.o"
  "CMakeFiles/gryphon_broker.dir/inproc_transport.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/tcp_transport.cpp.o"
  "CMakeFiles/gryphon_broker.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/gryphon_broker.dir/wire.cpp.o"
  "CMakeFiles/gryphon_broker.dir/wire.cpp.o.d"
  "libgryphon_broker.a"
  "libgryphon_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
