# Empty dependencies file for gryphon_broker.
# This may be replaced when dependencies are built.
