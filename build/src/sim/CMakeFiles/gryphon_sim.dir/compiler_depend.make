# Empty compiler generated dependencies file for gryphon_sim.
# This may be replaced when dependencies are built.
