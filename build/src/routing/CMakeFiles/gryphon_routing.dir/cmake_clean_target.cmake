file(REMOVE_RECURSE
  "libgryphon_routing.a"
)
