# Empty dependencies file for gryphon_routing.
# This may be replaced when dependencies are built.
