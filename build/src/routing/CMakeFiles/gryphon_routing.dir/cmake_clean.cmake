file(REMOVE_RECURSE
  "CMakeFiles/gryphon_routing.dir/annotated_pst.cpp.o"
  "CMakeFiles/gryphon_routing.dir/annotated_pst.cpp.o.d"
  "CMakeFiles/gryphon_routing.dir/content_router.cpp.o"
  "CMakeFiles/gryphon_routing.dir/content_router.cpp.o.d"
  "CMakeFiles/gryphon_routing.dir/link_matcher.cpp.o"
  "CMakeFiles/gryphon_routing.dir/link_matcher.cpp.o.d"
  "CMakeFiles/gryphon_routing.dir/trit.cpp.o"
  "CMakeFiles/gryphon_routing.dir/trit.cpp.o.d"
  "libgryphon_routing.a"
  "libgryphon_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
