file(REMOVE_RECURSE
  "libgryphon_event.a"
)
