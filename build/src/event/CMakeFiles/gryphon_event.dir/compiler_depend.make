# Empty compiler generated dependencies file for gryphon_event.
# This may be replaced when dependencies are built.
