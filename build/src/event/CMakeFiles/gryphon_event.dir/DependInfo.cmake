
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/event/codec.cpp" "src/event/CMakeFiles/gryphon_event.dir/codec.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/codec.cpp.o.d"
  "/root/repo/src/event/event.cpp" "src/event/CMakeFiles/gryphon_event.dir/event.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/event.cpp.o.d"
  "/root/repo/src/event/parser.cpp" "src/event/CMakeFiles/gryphon_event.dir/parser.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/parser.cpp.o.d"
  "/root/repo/src/event/schema.cpp" "src/event/CMakeFiles/gryphon_event.dir/schema.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/schema.cpp.o.d"
  "/root/repo/src/event/subscription.cpp" "src/event/CMakeFiles/gryphon_event.dir/subscription.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/subscription.cpp.o.d"
  "/root/repo/src/event/value.cpp" "src/event/CMakeFiles/gryphon_event.dir/value.cpp.o" "gcc" "src/event/CMakeFiles/gryphon_event.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
