file(REMOVE_RECURSE
  "CMakeFiles/gryphon_event.dir/codec.cpp.o"
  "CMakeFiles/gryphon_event.dir/codec.cpp.o.d"
  "CMakeFiles/gryphon_event.dir/event.cpp.o"
  "CMakeFiles/gryphon_event.dir/event.cpp.o.d"
  "CMakeFiles/gryphon_event.dir/parser.cpp.o"
  "CMakeFiles/gryphon_event.dir/parser.cpp.o.d"
  "CMakeFiles/gryphon_event.dir/schema.cpp.o"
  "CMakeFiles/gryphon_event.dir/schema.cpp.o.d"
  "CMakeFiles/gryphon_event.dir/subscription.cpp.o"
  "CMakeFiles/gryphon_event.dir/subscription.cpp.o.d"
  "CMakeFiles/gryphon_event.dir/value.cpp.o"
  "CMakeFiles/gryphon_event.dir/value.cpp.o.d"
  "libgryphon_event.a"
  "libgryphon_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
