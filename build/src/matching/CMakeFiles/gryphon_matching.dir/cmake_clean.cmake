file(REMOVE_RECURSE
  "CMakeFiles/gryphon_matching.dir/attribute_order.cpp.o"
  "CMakeFiles/gryphon_matching.dir/attribute_order.cpp.o.d"
  "CMakeFiles/gryphon_matching.dir/gating_matcher.cpp.o"
  "CMakeFiles/gryphon_matching.dir/gating_matcher.cpp.o.d"
  "CMakeFiles/gryphon_matching.dir/naive_matcher.cpp.o"
  "CMakeFiles/gryphon_matching.dir/naive_matcher.cpp.o.d"
  "CMakeFiles/gryphon_matching.dir/psg.cpp.o"
  "CMakeFiles/gryphon_matching.dir/psg.cpp.o.d"
  "CMakeFiles/gryphon_matching.dir/pst.cpp.o"
  "CMakeFiles/gryphon_matching.dir/pst.cpp.o.d"
  "CMakeFiles/gryphon_matching.dir/pst_matcher.cpp.o"
  "CMakeFiles/gryphon_matching.dir/pst_matcher.cpp.o.d"
  "libgryphon_matching.a"
  "libgryphon_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
