
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/attribute_order.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/attribute_order.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/attribute_order.cpp.o.d"
  "/root/repo/src/matching/gating_matcher.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/gating_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/gating_matcher.cpp.o.d"
  "/root/repo/src/matching/naive_matcher.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/naive_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/naive_matcher.cpp.o.d"
  "/root/repo/src/matching/psg.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/psg.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/psg.cpp.o.d"
  "/root/repo/src/matching/pst.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/pst.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/pst.cpp.o.d"
  "/root/repo/src/matching/pst_matcher.cpp" "src/matching/CMakeFiles/gryphon_matching.dir/pst_matcher.cpp.o" "gcc" "src/matching/CMakeFiles/gryphon_matching.dir/pst_matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/event/CMakeFiles/gryphon_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gryphon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
