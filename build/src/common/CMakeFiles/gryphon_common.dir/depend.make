# Empty dependencies file for gryphon_common.
# This may be replaced when dependencies are built.
