file(REMOVE_RECURSE
  "libgryphon_common.a"
)
