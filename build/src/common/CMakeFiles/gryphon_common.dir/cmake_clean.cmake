file(REMOVE_RECURSE
  "CMakeFiles/gryphon_common.dir/logging.cpp.o"
  "CMakeFiles/gryphon_common.dir/logging.cpp.o.d"
  "CMakeFiles/gryphon_common.dir/rng.cpp.o"
  "CMakeFiles/gryphon_common.dir/rng.cpp.o.d"
  "CMakeFiles/gryphon_common.dir/zipf.cpp.o"
  "CMakeFiles/gryphon_common.dir/zipf.cpp.o.d"
  "libgryphon_common.a"
  "libgryphon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
