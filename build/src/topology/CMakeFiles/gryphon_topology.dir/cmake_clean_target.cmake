file(REMOVE_RECURSE
  "libgryphon_topology.a"
)
