file(REMOVE_RECURSE
  "CMakeFiles/gryphon_topology.dir/builders.cpp.o"
  "CMakeFiles/gryphon_topology.dir/builders.cpp.o.d"
  "CMakeFiles/gryphon_topology.dir/network.cpp.o"
  "CMakeFiles/gryphon_topology.dir/network.cpp.o.d"
  "CMakeFiles/gryphon_topology.dir/routing_table.cpp.o"
  "CMakeFiles/gryphon_topology.dir/routing_table.cpp.o.d"
  "CMakeFiles/gryphon_topology.dir/spanning_tree.cpp.o"
  "CMakeFiles/gryphon_topology.dir/spanning_tree.cpp.o.d"
  "libgryphon_topology.a"
  "libgryphon_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gryphon_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
