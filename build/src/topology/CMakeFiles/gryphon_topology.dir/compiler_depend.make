# Empty compiler generated dependencies file for gryphon_topology.
# This may be replaced when dependencies are built.
